// ResultCache unit tests (LRU eviction, byte budget, epoch invalidation,
// CACHE CLEAR semantics, selective invalidation under live mutations) plus
// SingleFlight unit tests: one leader per key, follower adoption, follower
// deadlines, and leader abort.
#include "cache/result_cache.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cache/singleflight.h"

namespace sgq {
namespace {

CacheKey Key(uint64_t id, uint64_t epoch = 0,
             const std::string& engine = "CFQL") {
  CacheKey key;
  key.epoch = epoch;
  key.engine = engine;
  key.hash = {id * 0x9E3779B97F4A7C15ull, id};
  return key;
}

QueryResult Result(GraphId answer, size_t padding_answers = 0) {
  QueryResult result;
  result.answers.assign(padding_answers + 1, answer);
  result.stats.num_answers = static_cast<uint64_t>(result.answers.size());
  return result;
}

CacheConfig SingleShard(size_t max_bytes) {
  CacheConfig config;
  config.max_bytes = max_bytes;
  config.shards = 1;  // deterministic LRU order
  return config;
}

// Legacy-shaped helpers for the tests that predate live mutations: pin the
// current sequence (always valid) and use empty query features (subsumed by
// every graph, so ApplyAdd purges such entries — the conservative default).
bool Lookup(ResultCache& cache, const CacheKey& key, QueryResult* out) {
  return cache.Lookup(key, cache.mutation_seq(), out);
}

void Insert(ResultCache& cache, const CacheKey& key,
            const QueryResult& result) {
  cache.Insert(key, result, cache.mutation_seq(), GraphFeatures{});
}

GraphFeatures Feat(uint64_t label_bits, uint32_t nv, uint32_t ne) {
  GraphFeatures f;
  f.label_bits = label_bits;
  f.num_vertices = nv;
  f.num_edges = ne;
  return f;
}

// A result with an explicit ascending answer set (REMOVE invalidation
// binary-searches it).
QueryResult Answers(std::vector<GraphId> ids) {
  QueryResult r;
  r.stats.num_answers = static_cast<uint64_t>(ids.size());
  r.answers = std::move(ids);
  return r;
}

TEST(ResultCacheTest, MissThenHitRoundTrips) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  QueryResult out;
  EXPECT_FALSE(Lookup(cache, Key(1), &out));
  Insert(cache, Key(1), Result(7));
  ASSERT_TRUE(Lookup(cache, Key(1), &out));
  EXPECT_EQ(out.answers, std::vector<GraphId>{7});
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, DisabledCacheNeverHits) {
  CacheConfig config;
  config.enabled = false;
  ResultCache cache(config);
  EXPECT_FALSE(cache.enabled());
  Insert(cache, Key(1), Result(7));
  QueryResult out;
  EXPECT_FALSE(Lookup(cache, Key(1), &out));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, ZeroBudgetDisables) {
  ResultCache cache(SingleShard(0));
  EXPECT_FALSE(cache.enabled());
}

TEST(ResultCacheTest, KeyIsExactAcrossEnginesAndEpochs) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  Insert(cache, Key(1, /*epoch=*/0, "CFQL"), Result(7));
  QueryResult out;
  EXPECT_FALSE(Lookup(cache, Key(1, /*epoch=*/0, "VF2"), &out));
  EXPECT_FALSE(Lookup(cache, Key(1, /*epoch=*/1, "CFQL"), &out));
  EXPECT_TRUE(Lookup(cache, Key(1, /*epoch=*/0, "CFQL"), &out));
}

TEST(ResultCacheTest, LruEvictsColdestUnderByteBudget) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  // Budget sized (empirically via CachedResultBytes) for ~3 entries.
  const size_t entry_bytes = CachedResultBytes(Key(0), Result(0, 63));
  ResultCache cache(SingleShard(3 * entry_bytes + entry_bytes / 2));
  Insert(cache, Key(1), Result(1, 63));
  Insert(cache, Key(2), Result(2, 63));
  Insert(cache, Key(3), Result(3, 63));
  QueryResult out;
  ASSERT_TRUE(Lookup(cache, Key(1), &out));  // refresh 1: now 2 is coldest
  Insert(cache, Key(4), Result(4, 63));      // evicts 2
  EXPECT_FALSE(Lookup(cache, Key(2), &out));
  EXPECT_TRUE(Lookup(cache, Key(1), &out));
  EXPECT_TRUE(Lookup(cache, Key(3), &out));
  EXPECT_TRUE(Lookup(cache, Key(4), &out));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.Stats().bytes, cache.Stats().capacity_bytes);
}

TEST(ResultCacheTest, OversizedEntryIsNotCached) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(256));
  Insert(cache, Key(1), Result(1, /*padding_answers=*/100000));
  QueryResult out;
  EXPECT_FALSE(Lookup(cache, Key(1), &out));
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, InsertOverwritesExistingKey) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  Insert(cache, Key(1), Result(7));
  Insert(cache, Key(1), Result(9));
  QueryResult out;
  ASSERT_TRUE(Lookup(cache, Key(1), &out));
  EXPECT_EQ(out.answers, std::vector<GraphId>{9});
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResultCacheTest, AdvanceEpochInvalidatesEverything) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  EXPECT_EQ(cache.epoch(), 0u);
  Insert(cache, Key(1, cache.epoch()), Result(7));
  Insert(cache, Key(2, cache.epoch()), Result(8));
  EXPECT_EQ(cache.AdvanceEpoch(), 1u);
  QueryResult out;
  // Old-epoch keys are purged; new-epoch keys were never inserted.
  EXPECT_FALSE(Lookup(cache, Key(1, 0), &out));
  EXPECT_FALSE(Lookup(cache, Key(1, 1), &out));
  EXPECT_EQ(cache.Stats().invalidated, 2u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  // A straggler computed against the old database inserts under the old
  // epoch: accepted but unreachable by current-epoch lookups.
  Insert(cache, Key(3, 0), Result(9));
  EXPECT_FALSE(Lookup(cache, Key(3, cache.epoch()), &out));
}

TEST(ResultCacheTest, ClearPurgesWithoutAdvancingEpoch) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  Insert(cache, Key(1), Result(7));
  cache.Clear();
  EXPECT_EQ(cache.epoch(), 0u);
  QueryResult out;
  EXPECT_FALSE(Lookup(cache, Key(1), &out));
  EXPECT_EQ(cache.Stats().invalidated, 1u);
  // The same key can be repopulated after a clear.
  Insert(cache, Key(1), Result(7));
  EXPECT_TRUE(Lookup(cache, Key(1), &out));
}

TEST(ResultCacheTest, StatsJsonCarriesEveryField) {
  ResultCache cache(SingleShard(1 << 20));
  const std::string json = cache.Stats().ToJson();
  for (const char* field :
       {"\"enabled\":", "\"hits\":", "\"misses\":", "\"inserts\":",
        "\"evictions\":", "\"invalidated\":", "\"selective_invalidated\":",
        "\"stale_rejects\":", "\"entries\":", "\"bytes\":",
        "\"capacity_bytes\":", "\"epoch\":", "\"mutation_seq\":",
        "\"singleflight_shared\":", "\"singleflight_waiting\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " in " << json;
  }
}

TEST(ResultCacheTest, ConcurrentMixedTrafficKeepsBudget) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  CacheConfig config;
  config.max_bytes = 16 << 10;
  config.shards = 4;
  ResultCache cache(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < 400; ++i) {
        const CacheKey key = Key(t * 1000 + (i % 40));
        QueryResult out;
        if (!Lookup(cache, key, &out)) {
          Insert(cache, key, Result(static_cast<GraphId>(i), 15));
        }
        if (i % 97 == 0) cache.Clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_EQ(stats.hits + stats.misses, 1600u);
}

// --- Selective invalidation (live mutations) ---

TEST(ResultCacheTest, ApplyRemovePurgesOnlyAnswerMembers) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  cache.Insert(Key(1), Answers({3, 7, 12}), cache.mutation_seq(),
               Feat(0b1, 2, 1));
  cache.Insert(Key(2), Answers({5}), cache.mutation_seq(), Feat(0b1, 2, 1));
  EXPECT_EQ(cache.ApplyRemove(7), 1u);
  QueryResult out;
  // Entry 1 contained graph 7 -> purged; entry 2 did not -> survives, and
  // serves readers pinned at the *new* sequence (its answers are invariant
  // across the mutation it survived).
  EXPECT_FALSE(cache.Lookup(Key(1), cache.mutation_seq(), &out));
  EXPECT_TRUE(cache.Lookup(Key(2), cache.mutation_seq(), &out));
  EXPECT_EQ(cache.Stats().selective_invalidated, 1u);
}

TEST(ResultCacheTest, ApplyAddPurgesBySubsumptionOnly) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  // Query 1 could embed in the added graph (labels subset, small enough);
  // query 2 uses a label the added graph lacks; query 3 is too large.
  cache.Insert(Key(1), Answers({3}), cache.mutation_seq(), Feat(0b01, 2, 1));
  cache.Insert(Key(2), Answers({4}), cache.mutation_seq(), Feat(0b10, 2, 1));
  cache.Insert(Key(3), Answers({5}), cache.mutation_seq(), Feat(0b01, 9, 9));
  cache.ApplyAdd(Feat(0b01, 5, 6));
  QueryResult out;
  EXPECT_FALSE(cache.Lookup(Key(1), cache.mutation_seq(), &out));
  EXPECT_TRUE(cache.Lookup(Key(2), cache.mutation_seq(), &out));
  EXPECT_TRUE(cache.Lookup(Key(3), cache.mutation_seq(), &out));
  EXPECT_EQ(cache.Stats().selective_invalidated, 1u);
}

TEST(ResultCacheTest, LookupRefusesEntriesNewerThanReaderPin) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  const uint64_t old_pin = cache.mutation_seq();
  cache.ApplyRemove(999);  // no entries affected, but the sequence moves
  cache.Insert(Key(1), Answers({3}), cache.mutation_seq(), Feat(0b1, 2, 1));
  QueryResult out;
  // A reader pinned before the mutation must not see the newer entry; a
  // current reader hits it.
  EXPECT_FALSE(cache.Lookup(Key(1), old_pin, &out));
  EXPECT_TRUE(cache.Lookup(Key(1), cache.mutation_seq(), &out));
}

TEST(ResultCacheTest, StaleInsertIsRejected) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ResultCache cache(SingleShard(1 << 20));
  const uint64_t old_pin = cache.mutation_seq();
  cache.ApplyRemove(999);
  // Computed against the pre-mutation snapshot, arriving after the purge
  // for that mutation ran: refused, or it could resurrect stale answers.
  cache.Insert(Key(1), Answers({3}), old_pin, Feat(0b1, 2, 1));
  QueryResult out;
  EXPECT_FALSE(cache.Lookup(Key(1), cache.mutation_seq(), &out));
  EXPECT_EQ(cache.Stats().stale_rejects, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, MutationsKeepUnaffectedEntriesHittable) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  // The acceptance shape: a write burst must not zero the hit rate.
  ResultCache cache(SingleShard(1 << 20));
  cache.Insert(Key(1), Answers({3}), cache.mutation_seq(), Feat(0b10, 3, 2));
  for (int i = 0; i < 8; ++i) {
    cache.ApplyAdd(Feat(0b01, 4, 4));   // disjoint label: never subsumes
    cache.ApplyRemove(1000 + i);        // never in the answer set
  }
  QueryResult out;
  EXPECT_TRUE(cache.Lookup(Key(1), cache.mutation_seq(), &out));
  EXPECT_EQ(cache.Stats().selective_invalidated, 0u);
}

// --- SingleFlight ---

TEST(SingleFlightTest, SecondJoinerIsFollowerAndAdoptsResult) {
  SingleFlight flights;
  const SingleFlight::Ticket leader = flights.Join(Key(1));
  ASSERT_TRUE(leader.leader);
  const SingleFlight::Ticket follower = flights.Join(Key(1));
  EXPECT_FALSE(follower.leader);

  std::thread publisher([&] {
    // Give the follower a moment to actually block in Wait().
    while (flights.waiting() == 0) std::this_thread::yield();
    flights.Publish(leader, Result(7));
  });
  QueryResult out;
  EXPECT_TRUE(flights.Wait(follower, Deadline::Infinite(), &out));
  EXPECT_EQ(out.answers, std::vector<GraphId>{7});
  publisher.join();
  EXPECT_EQ(flights.waiting(), 0u);
}

TEST(SingleFlightTest, DistinctKeysAreIndependentFlights) {
  SingleFlight flights;
  const SingleFlight::Ticket a = flights.Join(Key(1));
  const SingleFlight::Ticket b = flights.Join(Key(2));
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  flights.Publish(a, Result(1));
  flights.Publish(b, Result(2));
}

TEST(SingleFlightTest, FloodCollapsesToExactlyOneExecution) {
  // The acceptance shape: N concurrent identical requests, exactly one
  // leader executes, every other joiner shares its result (N-1 sharers).
  constexpr int kRequests = 16;
  SingleFlight flights;
  std::atomic<int> executions{0};
  std::atomic<int> shared{0};
  std::atomic<int> leaders_ready{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&] {
      const SingleFlight::Ticket ticket = flights.Join(Key(42));
      if (ticket.leader) {
        // Hold the flight open until every other thread has joined it, so
        // the collapse is deterministic, then "execute" once.
        while (leaders_ready.load() < kRequests - 1) {
          std::this_thread::yield();
        }
        ++executions;
        flights.Publish(ticket, Result(9));
      } else {
        ++leaders_ready;
        QueryResult out;
        ASSERT_TRUE(flights.Wait(ticket, Deadline::Infinite(), &out));
        EXPECT_EQ(out.answers, std::vector<GraphId>{9});
        ++shared;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(shared.load(), kRequests - 1);
}

TEST(SingleFlightTest, NewFlightStartsAfterPublish) {
  SingleFlight flights;
  const SingleFlight::Ticket first = flights.Join(Key(1));
  flights.Publish(first, Result(1));
  // The finished flight left the table: the next joiner leads again.
  EXPECT_TRUE(flights.Join(Key(1)).leader);
}

TEST(SingleFlightTest, FollowerDeadlineExpiresWhileWaiting) {
  SingleFlight flights;
  const SingleFlight::Ticket leader = flights.Join(Key(1));
  const SingleFlight::Ticket follower = flights.Join(Key(1));
  QueryResult out;
  EXPECT_FALSE(
      flights.Wait(follower, Deadline::AfterSeconds(0.05), &out));
  flights.Publish(leader, Result(1));  // leader finishes later; no crash
}

TEST(SingleFlightTest, AbortWakesFollowersWithoutResult) {
  SingleFlight flights;
  const SingleFlight::Ticket leader = flights.Join(Key(1));
  const SingleFlight::Ticket follower = flights.Join(Key(1));
  std::promise<bool> woke;
  std::thread waiter([&] {
    QueryResult out;
    woke.set_value(flights.Wait(follower, Deadline::AfterSeconds(5), &out));
  });
  while (flights.waiting() == 0) std::this_thread::yield();
  flights.Abort(leader);
  EXPECT_FALSE(woke.get_future().get());  // woke early, no published result
  waiter.join();
  // The aborted flight left the table.
  EXPECT_TRUE(flights.Join(Key(1)).leader);
}

}  // namespace
}  // namespace sgq
