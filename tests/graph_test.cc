#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_database.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder;
  Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.LabelBound(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphBuilderTest, SingleVertex) {
  GraphBuilder builder;
  const VertexId v = builder.AddVertex(7);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.label(v), 7u);
  EXPECT_EQ(g.degree(v), 0u);
  EXPECT_EQ(g.LabelBound(), 8u);
  EXPECT_EQ(g.NumDistinctLabels(), 1u);
}

TEST(GraphBuilderTest, RejectsDuplicateEdge) {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(0);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(1, 0));  // undirected duplicate
  EXPECT_EQ(builder.NumEdges(), 1u);
}

TEST(GraphTest, AdjacencySortedAndSymmetric) {
  Graph g = MakeGraph({0, 1, 2, 1}, {{0, 2}, {0, 1}, {2, 3}, {1, 2}});
  ASSERT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  const auto n2 = g.Neighbors(2);
  EXPECT_TRUE(std::is_sorted(n2.begin(), n2.end()));
  EXPECT_EQ(n2.size(), 3u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.Neighbors(v)) {
      EXPECT_TRUE(g.HasEdge(u, v)) << u << "-" << v;
      EXPECT_TRUE(g.HasEdge(v, u)) << v << "-" << u;
    }
  }
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(3, 0));
}

TEST(GraphTest, NeighborLabelsSorted) {
  Graph g = MakeGraph({5, 3, 9, 3}, {{0, 1}, {0, 2}, {0, 3}});
  const auto labels = g.NeighborLabels(0);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], 3u);
  EXPECT_EQ(labels[1], 3u);
  EXPECT_EQ(labels[2], 9u);
}

TEST(GraphTest, LabelIndex) {
  Graph g = MakeGraph({1, 0, 1, 2, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto ones = g.VerticesWithLabel(1);
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 0u);
  EXPECT_EQ(ones[1], 2u);
  EXPECT_EQ(ones[2], 4u);
  EXPECT_EQ(g.NumVerticesWithLabel(0), 1u);
  EXPECT_EQ(g.NumVerticesWithLabel(2), 1u);
  EXPECT_TRUE(g.VerticesWithLabel(99).empty());
  EXPECT_EQ(g.NumDistinctLabels(), 3u);
}

TEST(GraphTest, DegreeAndMaxDegree) {
  Graph g = MakePath({0, 0, 0, 0});
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.MaxDegree(), 2u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0 * 3 / 4);
}

TEST(GraphTest, MemoryBytesPositive) {
  Graph g = MakePath({0, 1, 2});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(GraphDatabaseTest, AddAndRemove) {
  GraphDatabase db;
  EXPECT_TRUE(db.empty());
  const GraphId a = db.Add(MakePath({0, 1}));
  const GraphId b = db.Add(MakePath({1, 2, 3}));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.graph(b).NumVertices(), 3u);

  // Remove swaps in the last graph.
  EXPECT_TRUE(db.Remove(a));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.graph(0).NumVertices(), 3u);
  EXPECT_FALSE(db.Remove(5));
}

TEST(GraphDatabaseTest, ComputeStats) {
  GraphDatabase db;
  db.Add(MakePath({0, 1}));      // 2 vertices, 1 edge, 2 labels
  db.Add(MakePath({2, 2, 2}));   // 3 vertices, 2 edges, 1 label
  const DatabaseStats s = db.ComputeStats();
  EXPECT_EQ(s.num_graphs, 2u);
  EXPECT_EQ(s.num_distinct_labels, 3u);
  EXPECT_DOUBLE_EQ(s.avg_vertices_per_graph, 2.5);
  EXPECT_DOUBLE_EQ(s.avg_edges_per_graph, 1.5);
  EXPECT_DOUBLE_EQ(s.avg_labels_per_graph, 1.5);
}

}  // namespace
}  // namespace sgq
