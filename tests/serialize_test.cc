#include "util/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sgq {
namespace {

TEST(SerializeTest, U32RoundTrip) {
  std::stringstream buffer;
  WriteU32(buffer, 0);
  WriteU32(buffer, 1);
  WriteU32(buffer, 0xdeadbeef);
  WriteU32(buffer, UINT32_MAX);
  uint32_t v = 0;
  ASSERT_TRUE(ReadU32(buffer, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(ReadU32(buffer, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(ReadU32(buffer, &v));
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(ReadU32(buffer, &v));
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_FALSE(ReadU32(buffer, &v));  // exhausted
}

TEST(SerializeTest, U64RoundTrip) {
  std::stringstream buffer;
  WriteU64(buffer, 0x0123456789abcdefULL);
  WriteU64(buffer, UINT64_MAX);
  uint64_t v = 0;
  ASSERT_TRUE(ReadU64(buffer, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
  ASSERT_TRUE(ReadU64(buffer, &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(SerializeTest, TruncatedReadsFail) {
  std::stringstream buffer;
  WriteU64(buffer, 42);
  std::string bytes = buffer.str();
  for (size_t cut = 0; cut < 8; ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    uint64_t v = 0;
    EXPECT_FALSE(ReadU64(truncated, &v)) << "cut " << cut;
  }
}

TEST(SerializeTest, VectorRoundTrip) {
  std::stringstream buffer;
  const std::vector<uint32_t> values = {3, 1, 4, 1, 5, 9, 2, 6};
  WriteU32Vector(buffer, values);
  std::vector<uint32_t> out;
  ASSERT_TRUE(ReadU32Vector(buffer, 100, &out));
  EXPECT_EQ(out, values);
}

TEST(SerializeTest, VectorSizeGuardRejectsHugeDeclaredSizes) {
  std::stringstream buffer;
  WriteU64(buffer, uint64_t{1} << 40);  // absurd declared length
  std::vector<uint32_t> out;
  EXPECT_FALSE(ReadU32Vector(buffer, 1000, &out));
}

TEST(SerializeTest, EmptyVector) {
  std::stringstream buffer;
  WriteU32Vector(buffer, std::vector<uint32_t>{});
  std::vector<uint32_t> out = {7};
  ASSERT_TRUE(ReadU32Vector(buffer, 10, &out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace sgq
