#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/bitset.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sgq {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    const int64_t x = rng.NextInRange(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
  EXPECT_EQ(rng.NextInRange(3, 3), 3);
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_EQ(b.size_bits(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, SubsetTest) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(77);
  b.Set(3);
  b.Set(77);
  b.Set(50);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  Bitset empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(empty));
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  Deadline d = Deadline::AfterSeconds(0.01);
  EXPECT_FALSE(d.IsInfinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineCheckerTest, SticksOnceExpired) {
  DeadlineChecker checker(Deadline::AfterSeconds(0.005));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The checker polls every 1024 ticks, so spin enough times.
  bool expired = false;
  for (int i = 0; i < 5000 && !expired; ++i) expired = checker.Tick();
  EXPECT_TRUE(expired);
  EXPECT_TRUE(checker.Tick());
  EXPECT_TRUE(checker.expired());
}

TEST(DeadlineCheckerTest, InfiniteNeverTicksOver) {
  DeadlineChecker checker{Deadline::Infinite()};
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(checker.Tick());
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(t.ElapsedMillis(), 4.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 5.0);
}

TEST(IntervalTimerTest, Accumulates) {
  IntervalTimer t;
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  t.Stop();
  const double first = t.TotalMillis();
  EXPECT_GE(first, 2.0);
  t.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  t.Stop();
  EXPECT_GE(t.TotalMillis(), first + 2.0);
  t.Reset();
  EXPECT_EQ(t.TotalNanos(), 0);
}

}  // namespace
}  // namespace sgq
