// Parser robustness: randomized garbage and adversarial near-valid inputs
// must be rejected cleanly (no crash, no partial state in the output
// database).
#include <gtest/gtest.h>

#include <string>

#include "graph/graph_io.h"
#include "util/rng.h"

namespace sgq {
namespace {

TEST(IoRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(404);
  const std::string alphabet = "tve 0123456789#\n\t\r xyz-";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t length = rng.NextBounded(200);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    GraphDatabase db;
    std::string error;
    if (ParseDatabase(text, &db, &error)) {
      // Whatever parsed must be structurally sound.
      for (GraphId g = 0; g < db.size(); ++g) {
        const Graph& graph = db.graph(g);
        for (VertexId v = 0; v < graph.NumVertices(); ++v) {
          for (VertexId u : graph.Neighbors(v)) {
            ASSERT_LT(u, graph.NumVertices());
            ASSERT_TRUE(graph.HasEdge(u, v));
          }
        }
      }
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(IoRobustnessTest, AdversarialNearValidInputs) {
  const char* cases[] = {
      "t\nv 0 1\n",                 // bare t header is fine
      "t # x\nv 0 1\n",             // non-numeric id ignored
      "t # 0\nv 0 4294967294\n",    // max supported label
      "t # 0\nv 0 4294967295\n",    // reserved label value -> reject
      "t # 0\nv 0 99999999999\n",   // label overflow -> reject
      "t # 0\nv -1 0\n",            // negative id -> reject
      "t # 0\nv 0 1\ne 0\n",        // short edge -> reject
      "t # 0\nv 0 1\nv 1 1\ne 0 1 2 3 4\n",  // extra tokens -> reject
      "e 0 1\n",                    // edge before header -> reject
      "t # 0\n\x01\x02\n",          // control characters -> reject
  };
  for (const char* text : cases) {
    GraphDatabase db;
    std::string error;
    ParseDatabase(text, &db, &error);  // must not crash either way
  }
}

TEST(IoRobustnessTest, EmptyAndWhitespaceOnly) {
  GraphDatabase db;
  std::string error;
  EXPECT_TRUE(ParseDatabase("", &db, &error));
  EXPECT_EQ(db.size(), 0u);
  EXPECT_TRUE(ParseDatabase("\n\n  \n# only comments\n", &db, &error));
  EXPECT_EQ(db.size(), 0u);
}

TEST(IoRobustnessTest, WindowsLineEndings) {
  GraphDatabase db;
  std::string error;
  ASSERT_TRUE(ParseDatabase("t # 0\r\nv 0 1\r\nv 1 2\r\ne 0 1\r\n", &db,
                            &error))
      << error;
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.graph(0).NumEdges(), 1u);
}

TEST(IoRobustnessTest, LargeGraphRoundTrip) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < 500; ++i) builder.AddVertex(i % 7);
  for (uint32_t i = 0; i + 1 < 500; ++i) builder.AddEdge(i, i + 1);
  GraphDatabase db;
  db.Add(builder.Build());
  const std::string text = SerializeDatabase(db);
  GraphDatabase reparsed;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.graph(0).NumVertices(), 500u);
  EXPECT_EQ(reparsed.graph(0).NumEdges(), 499u);
}

}  // namespace
}  // namespace sgq
