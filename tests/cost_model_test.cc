// Unit tests for the admission-time cost model: statistics built in one
// database pass, estimate monotonicity in query size/selectivity, LIMIT
// scaling, and the unbuilt/degenerate cases the scheduler relies on
// (everything is "cheap" until statistics exist).
#include "service/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>

#include "gen/graph_gen.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

Graph Path(std::initializer_list<Label> labels) {
  GraphBuilder builder;
  VertexId prev = 0;
  bool first = true;
  for (const Label l : labels) {
    const VertexId v = builder.AddVertex(l);
    if (!first) builder.AddEdge(prev, v);
    prev = v;
    first = false;
  }
  return builder.Build();
}

Graph SingleVertex(Label l) {
  GraphBuilder builder;
  builder.AddVertex(l);
  return builder.Build();
}

// Two triangles sharing no labels: label 0 is common (6 vertices, 6
// (0,0)-edges across the two), label 5 appears nowhere.
GraphDatabase TinyDb() {
  GraphDatabase db;
  db.Add(sgq::testing::MakeCycle({0, 0, 0}));
  db.Add(sgq::testing::MakeCycle({0, 0, 0}));
  db.Add(sgq::testing::MakeCycle({1, 2, 3}));
  return db;
}

TEST(CostModelTest, UnbuiltEstimatesZero) {
  CostModel model;
  EXPECT_FALSE(model.built());
  EXPECT_DOUBLE_EQ(model.Estimate(SingleVertex(0)), 0.0);
}

TEST(CostModelTest, SingleVertexEstimateIsLabelCount) {
  CostModel model;
  model.Build(TinyDb());
  ASSERT_TRUE(model.built());
  // 6 label-0 vertices across the database; labels absent cost nothing.
  EXPECT_DOUBLE_EQ(model.Estimate(SingleVertex(0)), 6.0);
  EXPECT_DOUBLE_EQ(model.Estimate(SingleVertex(1)), 1.0);
  EXPECT_DOUBLE_EQ(model.Estimate(SingleVertex(5)), 0.0);
}

TEST(CostModelTest, AbsentLabelPairKillsTheEstimate) {
  CostModel model;
  model.Build(TinyDb());
  // No (0,1) edge exists, so the tree extension ratio is 0: the estimate
  // collapses to the root level only.
  EXPECT_DOUBLE_EQ(model.Estimate(Path({0, 1})), 6.0);
  // (0,0) edges exist: the 2-path must cost strictly more than its root.
  EXPECT_GT(model.Estimate(Path({0, 0})), 6.0);
}

TEST(CostModelTest, LongerQueriesOnDenseLabelsCostMore) {
  CostModel model;
  model.Build(TinyDb());
  // Each triangle vertex has 2 same-label neighbors, so the extension
  // ratio for (0,0) is 2*6/6 = 2 and every extra path vertex doubles the
  // frontier: the cost sequence is strictly increasing.
  const double p2 = model.Estimate(Path({0, 0}));
  const double p3 = model.Estimate(Path({0, 0, 0}));
  const double p4 = model.Estimate(Path({0, 0, 0, 0}));
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
}

TEST(CostModelTest, BackwardEdgesOnlyReduceTheEstimate) {
  CostModel model;
  model.Build(TinyDb());
  // Triangle = 3-path + one backward edge; the backward edge multiplies by
  // a <=1 selectivity, so it can never raise the estimate.
  const double path_cost = model.Estimate(Path({0, 0, 0}));
  const double triangle_cost =
      model.Estimate(sgq::testing::MakeCycle({0, 0, 0}));
  EXPECT_LE(triangle_cost, path_cost);
  EXPECT_GT(triangle_cost, 0.0);
}

TEST(CostModelTest, LimitScalesTheEstimateDown) {
  CostModel model;
  model.Build(TinyDb());  // 3 graphs
  const Graph query = Path({0, 0});
  const double full = model.Estimate(query);
  ASSERT_GT(full, 0.0);
  // LIMIT 1 of 3 graphs: a third of the scan.
  EXPECT_DOUBLE_EQ(model.Estimate(query, 1), full / 3.0);
  // A limit at or beyond the database size changes nothing.
  EXPECT_DOUBLE_EQ(model.Estimate(query, 3), full);
  EXPECT_DOUBLE_EQ(model.Estimate(query, 1000), full);
}

TEST(CostModelTest, RebuildReplacesStatistics) {
  CostModel model;
  model.Build(TinyDb());
  const double before = model.Estimate(SingleVertex(0));
  GraphDatabase bigger = TinyDb();
  bigger.Add(sgq::testing::MakeCycle({0, 0, 0}));
  model.Build(bigger);
  EXPECT_DOUBLE_EQ(model.Estimate(SingleVertex(0)), before + 3.0);
  // Rebuilding on an empty database clears everything.
  model.Build(GraphDatabase());
  EXPECT_TRUE(model.built());
  EXPECT_DOUBLE_EQ(model.Estimate(SingleVertex(0)), 0.0);
}

TEST(CostModelTest, ScalesToSyntheticDatabaseAndStaysFinite) {
  SyntheticParams params;
  params.num_graphs = 50;
  params.vertices_per_graph = 20;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 13;
  CostModel model;
  model.Build(GenerateSyntheticDatabase(params));
  const double cost = model.Estimate(sgq::testing::MakeCycle({0, 1, 2, 3}));
  EXPECT_GE(cost, 0.0);
  EXPECT_TRUE(std::isfinite(cost));
}

}  // namespace
}  // namespace sgq
