// White-box tests of the direct-enumeration baselines (Ullmann, QuickSI).
#include "matching/direct_enumeration.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "graph/graph_utils.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

TEST(UllmannTest, RefinementPreemptsHopelessSearch) {
  // Triangle query against a long unlabeled path: label/degree filtering
  // leaves interior path vertices as candidates (degree 2 each), but
  // Ullmann's refinement empties the matrix before any search node is
  // expanded — recursion_calls must be zero.
  const Graph q = MakeCycle({0, 0, 0});
  const Graph g = MakePath({0, 0, 0, 0, 0, 0});
  UllmannMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());  // LDF alone does not rule the path out
  const EnumerateResult r =
      matcher.Enumerate(q, g, *data, UINT64_MAX, nullptr);
  EXPECT_EQ(r.embeddings, 0u);
  // Arc-consistency cannot see the triangle at the top level, but the
  // post-assignment refinement kills every branch at depth 1: the search
  // tree stays tiny instead of exploring all interior-vertex pairs.
  EXPECT_LE(r.recursion_calls, 4u);
}

TEST(UllmannTest, SearchesInQueryIdOrder) {
  // Disconnected-prefix orders are fine for Ullmann: it checks all mapped
  // neighbors regardless of order. Exercise a query whose vertex 1 is not
  // adjacent to vertex 0.
  const Graph q = MakeGraph({0, 1, 2}, {{0, 2}, {1, 2}});
  const Graph g = MakeGraph({0, 1, 2, 0}, {{0, 2}, {1, 2}, {2, 3}});
  UllmannMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());
  EXPECT_EQ(matcher.Enumerate(q, g, *data, UINT64_MAX, nullptr).embeddings,
            BruteForceEnumerate(q, g, UINT64_MAX));
}

TEST(QuickSiTest, OrderStartsAtRarestLabel) {
  // QuickSI's QI-sequence starts at the query vertex whose label is rarest
  // in the data graph. Verify indirectly: with a unique anchoring label the
  // search must touch at most a handful of nodes.
  const Graph q = MakePath({5, 0, 0});
  GraphBuilder b;
  b.AddVertex(5);
  for (int i = 0; i < 30; ++i) b.AddVertex(0);
  for (VertexId v = 0; v + 1 < 31; ++v) b.AddEdge(v, v + 1);
  const Graph g = b.Build();
  QuickSiMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());
  const EnumerateResult r =
      matcher.Enumerate(q, g, *data, UINT64_MAX, nullptr);
  EXPECT_EQ(r.embeddings, 1u);  // 5-0-0 anchored at the unique 5
  // Anchored search visits a small frontier, not the whole path.
  EXPECT_LT(r.recursion_calls, 10u);
}

TEST(DirectEnumerationTest, DeadlineBoundsRuntime) {
  // Full enumeration over a dense unlabeled instance is astronomically
  // large; a millisecond deadline must bound the wall time (either the
  // search aborts or — for Ullmann — per-branch refinement finishes it).
  Rng rng(17);
  std::vector<Label> labels = {0};
  const Graph q = GenerateRandomGraph(10, 5.0, labels, &rng);
  const Graph g = GenerateRandomGraph(120, 8.0, labels, &rng);
  for (Matcher* matcher :
       std::initializer_list<Matcher*>{new UllmannMatcher, new QuickSiMatcher}) {
    const auto data = matcher->Filter(q, g);
    if (data->Passed()) {
      DeadlineChecker tight{Deadline::AfterSeconds(1e-3)};
      WallTimer timer;
      matcher->Enumerate(q, g, *data, UINT64_MAX, &tight);
      EXPECT_LT(timer.ElapsedSeconds(), 5.0) << matcher->name();
    }
    delete matcher;
  }
}

TEST(DirectEnumerationTest, SingleVertexQueries) {
  const Graph q = MakeGraph({3}, {});
  const Graph g = MakeGraph({3, 3, 0}, {{0, 1}, {1, 2}});
  for (Matcher* matcher :
       std::initializer_list<Matcher*>{new UllmannMatcher, new QuickSiMatcher}) {
    const auto data = matcher->Filter(q, g);
    ASSERT_TRUE(data->Passed());
    EXPECT_EQ(matcher->Enumerate(q, g, *data, UINT64_MAX, nullptr).embeddings,
              2u)
        << matcher->name();
    delete matcher;
  }
}

}  // namespace
}  // namespace sgq
