#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

namespace sgq {
namespace {

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEverything) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNothingPendingReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  pool.Submit([] {});
  pool.Wait();
  pool.Wait();  // idempotent
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    for (size_t chunk : {1ul, 3ul, 16ul, 4096ul}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, chunk, [&](size_t begin, size_t end, uint32_t slot) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        // Slot ids cover the workers plus the participating caller.
        ASSERT_LE(slot, pool.num_threads());
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " chunk=" << chunk
                                     << " index=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkZeroTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(10, 0, [&](size_t begin, size_t end, uint32_t) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 10u);
}

// A slot's invocations must never overlap: per-slot unsynchronized state is
// the whole point of the slot contract.
TEST(ThreadPoolTest, SlotInvocationsNeverOverlap) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> active(pool.num_threads() + 1);
  for (auto& a : active) a.store(0);
  std::atomic<bool> overlapped{false};
  pool.ParallelFor(500, 2, [&](size_t, size_t, uint32_t slot) {
    if (active[slot].fetch_add(1) != 0) overlapped.store(true);
    active[slot].fetch_sub(1);
  });
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRounds) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, 7, [&](size_t begin, size_t end, uint32_t) {
      size_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u) << "round " << round;
  }
}

TEST(ThreadPoolTest, DefaultChunkBounds) {
  EXPECT_GE(ThreadPool::DefaultChunk(0, 4), 1u);
  EXPECT_GE(ThreadPool::DefaultChunk(1, 4), 1u);
  EXPECT_LE(ThreadPool::DefaultChunk(1u << 30, 2), 64u);
  // Mid-size databases get more than one graph per hand-out.
  EXPECT_GT(ThreadPool::DefaultChunk(10000, 4), 1u);
}

// The calling thread is an executor, not a bystander: any chunk that runs
// under slot num_threads() must run on the caller's own thread, and when the
// workers are wedged the caller alone must drain the whole range.
TEST(ThreadPoolTest, CallerParticipatesInParallelFor) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();

  // Wedge the single worker behind a task that only finishes once the range
  // has been fully covered — every body invocation is forced onto the caller.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool.Submit([released] { released.wait(); });

  const size_t n = 40;
  std::atomic<size_t> covered{0};
  std::atomic<bool> wrong_thread{false};
  pool.ParallelFor(n, 4, [&](size_t begin, size_t end, uint32_t slot) {
    if (slot != pool.num_threads() || std::this_thread::get_id() != caller) {
      wrong_thread.store(true);
    }
    if (covered.fetch_add(end - begin) + (end - begin) == n) {
      release.set_value();  // unwedge the worker so ParallelFor can return
    }
  });
  EXPECT_EQ(covered.load(), n);
  EXPECT_FALSE(wrong_thread.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace sgq
