// Unit tests for the router building blocks: shard-spec and endpoint
// parsing, the pinned shard-assignment hash (a wire contract — changing it
// would misroute a mixed-version fleet), database filtering as an exact
// partition, and the scatter-gather merge rules (determinism, limit
// semantics, stats folding, failure policies).
#include "router/scatter_gather.h"
#include "router/shard_client.h"
#include "router/shard_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "gen/graph_gen.h"
#include "graph/graph_database.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

TEST(ShardSpecTest, ParsesValidSpecs) {
  ShardSpec spec;
  std::string error;
  ASSERT_TRUE(ParseShardSpec("0/1", &spec, &error));
  EXPECT_EQ(spec.index, 0u);
  EXPECT_EQ(spec.count, 1u);
  ASSERT_TRUE(ParseShardSpec("3/8", &spec, &error));
  EXPECT_EQ(spec.index, 3u);
  EXPECT_EQ(spec.count, 8u);
}

TEST(ShardSpecTest, RejectsInvalidSpecs) {
  const char* bad[] = {"", "1", "1/", "/2", "a/2", "1/b", "2/2", "5/3",
                       "1/0", "-1/2", "1/2/3", "9999999999/9999999999"};
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    ShardSpec spec;
    std::string error;
    EXPECT_FALSE(ParseShardSpec(text, &spec, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(ShardMapTest, HashIsPinned) {
  // splitmix64 golden values. These are part of the wire contract: every
  // server and router in a fleet must agree on them, so a change here is a
  // breaking protocol change, not a refactor.
  EXPECT_EQ(ShardHashGraphId(0), 16294208416658607535ull);
  EXPECT_EQ(ShardHashGraphId(1), 10451216379200822465ull);
  EXPECT_EQ(ShardHashGraphId(2), 10905525725756348110ull);
  EXPECT_EQ(ShardHashGraphId(7), 7191089600892374487ull);
  EXPECT_EQ(ShardHashGraphId(1000000), 7497680628364559847ull);
}

TEST(ShardMapTest, AssignmentIsInRangeAndRoughlyBalanced) {
  constexpr uint32_t kShards = 4;
  constexpr GraphId kIds = 10000;
  std::vector<uint32_t> counts(kShards, 0);
  for (GraphId id = 0; id < kIds; ++id) {
    const uint32_t shard = ShardOfGraph(id, kShards);
    ASSERT_LT(shard, kShards);
    ++counts[shard];
  }
  // splitmix64 spreads dense ids ~uniformly; allow a generous band around
  // the 2500 expectation so the test never flakes on the fixed hash.
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(counts[shard], 2200u) << "shard " << shard;
    EXPECT_LT(counts[shard], 2800u) << "shard " << shard;
  }
  EXPECT_EQ(ShardOfGraph(123, 1), 0u);
  EXPECT_EQ(ShardOfGraph(123, 0), 0u);
}

GraphDatabase MakeDatabase(size_t graphs) {
  SyntheticParams params;
  params.num_graphs = static_cast<uint32_t>(graphs);
  params.vertices_per_graph = 8;
  params.degree = 2.0;
  params.num_labels = 4;
  params.seed = 7;
  return GenerateSyntheticDatabase(params);
}

// FilterDatabaseToShard consumes its input; tests hand out clones of a
// master copy.
GraphDatabase Clone(const GraphDatabase& db) {
  GraphDatabase copy;
  for (const Graph& g : db.graphs()) copy.Add(g);
  return copy;
}

TEST(ShardMapTest, FilterIsAnExactPartition) {
  constexpr uint32_t kShards = 3;
  const GraphDatabase db = MakeDatabase(50);
  std::vector<bool> covered(db.size(), false);
  for (uint32_t s = 0; s < kShards; ++s) {
    std::vector<GraphId> global_ids;
    const GraphDatabase shard =
        FilterDatabaseToShard(Clone(db), {s, kShards}, &global_ids);
    ASSERT_EQ(shard.size(), global_ids.size());
    for (GraphId local = 0; local < shard.size(); ++local) {
      const GraphId global = global_ids[local];
      ASSERT_LT(global, db.size());
      EXPECT_FALSE(covered[global]) << "graph owned by two shards";
      covered[global] = true;
      // Ownership must agree with the hash, and the shard's copy must be
      // the original graph (same vertex/edge counts as a cheap identity).
      EXPECT_EQ(ShardOfGraph(global, kShards), s);
      EXPECT_EQ(shard.graph(local).NumVertices(),
                db.graph(global).NumVertices());
      EXPECT_EQ(shard.graph(local).NumEdges(), db.graph(global).NumEdges());
      // Strictly increasing map: sorted local answers stay sorted globally.
      if (local > 0) {
        EXPECT_LT(global_ids[local - 1], global);
      }
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool b) { return b; }));
}

TEST(ShardMapTest, UnshardedSpecPassesThrough) {
  const GraphDatabase db = MakeDatabase(10);
  std::vector<GraphId> global_ids = {1, 2, 3};  // must be cleared
  const GraphDatabase out =
      FilterDatabaseToShard(Clone(db), {0, 1}, &global_ids);
  EXPECT_EQ(out.size(), db.size());
  EXPECT_TRUE(global_ids.empty());
}

TEST(ShardEndpointTest, ParsesAllForms) {
  ShardEndpoint endpoint;
  std::string error;
  ASSERT_TRUE(ParseShardEndpoint("unix:/tmp/s.sock", &endpoint, &error));
  EXPECT_EQ(endpoint.unix_path, "/tmp/s.sock");
  ASSERT_TRUE(ParseShardEndpoint("/var/run/sgq.sock", &endpoint, &error));
  EXPECT_EQ(endpoint.unix_path, "/var/run/sgq.sock");
  ASSERT_TRUE(ParseShardEndpoint("127.0.0.1:7474", &endpoint, &error));
  EXPECT_TRUE(endpoint.unix_path.empty());
  EXPECT_EQ(endpoint.host, "127.0.0.1");
  EXPECT_EQ(endpoint.port, 7474);

  const char* bad[] = {"", "unix:", "host", "host:", ":80", "host:0",
                       "host:99999", "host:12ab"};
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_FALSE(ParseShardEndpoint(text, &endpoint, &error));
  }

  std::vector<ShardEndpoint> endpoints;
  ASSERT_TRUE(ParseShardEndpoints("unix:/a.sock,localhost:91,/b.sock",
                                  &endpoints, &error));
  ASSERT_EQ(endpoints.size(), 3u);
  EXPECT_EQ(endpoints[0].unix_path, "/a.sock");
  EXPECT_EQ(endpoints[1].port, 91);
  EXPECT_EQ(endpoints[2].unix_path, "/b.sock");
  EXPECT_FALSE(ParseShardEndpoints("", &endpoints, &error));
  EXPECT_FALSE(ParseShardEndpoints("unix:/a.sock,,unix:/b.sock", &endpoints,
                                   &error));
}

TEST(ShardFailurePolicyTest, Parses) {
  ShardFailurePolicy policy;
  ASSERT_TRUE(ParseShardFailurePolicy("error", &policy));
  EXPECT_EQ(policy, ShardFailurePolicy::kError);
  ASSERT_TRUE(ParseShardFailurePolicy("degraded", &policy));
  EXPECT_EQ(policy, ShardFailurePolicy::kDegraded);
  EXPECT_FALSE(ParseShardFailurePolicy("lenient", &policy));
  EXPECT_STREQ(ToString(ShardFailurePolicy::kError), "error");
  EXPECT_STREQ(ToString(ShardFailurePolicy::kDegraded), "degraded");
}

ShardQueryReply OkReply(std::vector<GraphId> ids, double filtering_ms = 1,
                        double verification_ms = 1) {
  ShardQueryReply reply;
  reply.ok = true;
  reply.ids = std::move(ids);
  reply.stats.num_answers = reply.ids.size();
  reply.stats.filtering_ms = filtering_ms;
  reply.stats.verification_ms = verification_ms;
  reply.stats.num_candidates = 10;
  reply.stats.si_tests = 5;
  reply.stats.aux_memory_bytes = 100;
  return reply;
}

ShardQueryReply FailedReply(const std::string& error) {
  ShardQueryReply reply;
  reply.ok = false;
  reply.error = error;
  return reply;
}

TEST(MergeTest, MergesDisjointSortedAnswers) {
  const std::vector<ShardQueryReply> replies = {
      OkReply({1, 8, 40}, /*filtering_ms=*/2, /*verification_ms=*/1),
      OkReply({0, 13}, /*filtering_ms=*/5, /*verification_ms=*/0.5),
      OkReply({}, /*filtering_ms=*/0.5, /*verification_ms=*/8),
  };
  const MergedQuery merged =
      MergeShardResults(replies, ShardFailurePolicy::kError, 0);
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(merged.result.answers, (std::vector<GraphId>{0, 1, 8, 13, 40}));
  EXPECT_EQ(merged.result.stats.num_answers, 5u);
  EXPECT_EQ(merged.shards.ok, 3u);
  EXPECT_EQ(merged.shards.total, 3u);
  // Parallel wall-clock convention: phase times take the max, counters sum.
  EXPECT_DOUBLE_EQ(merged.result.stats.filtering_ms, 5);
  EXPECT_DOUBLE_EQ(merged.result.stats.verification_ms, 8);
  EXPECT_EQ(merged.result.stats.num_candidates, 30u);
  EXPECT_EQ(merged.result.stats.si_tests, 15u);
  EXPECT_EQ(merged.result.stats.aux_memory_bytes, 300u);
  EXPECT_FALSE(merged.result.stats.timed_out);
}

TEST(MergeTest, ArrivalOrderDoesNotChangeTheResult) {
  std::vector<ShardQueryReply> replies = {OkReply({2, 9}), OkReply({4}),
                                          OkReply({0, 7, 11})};
  const MergedQuery reference =
      MergeShardResults(replies, ShardFailurePolicy::kError, 0);
  std::vector<size_t> order = {0, 1, 2};
  // All 6 arrival orders must merge to the identical answer vector.
  while (std::next_permutation(order.begin(), order.end())) {
    std::vector<ShardQueryReply> permuted;
    for (const size_t i : order) permuted.push_back(replies[i]);
    const MergedQuery merged =
        MergeShardResults(permuted, ShardFailurePolicy::kError, 0);
    ASSERT_TRUE(merged.ok);
    EXPECT_EQ(merged.result.answers, reference.result.answers);
  }
}

TEST(MergeTest, LimitAppliesPostMerge) {
  // Per-shard truncation to k already happened server-side; the merged
  // take-k must equal the global take-k (the k smallest overall).
  const std::vector<ShardQueryReply> replies = {OkReply({3, 10}),
                                                OkReply({1, 5})};
  const MergedQuery merged =
      MergeShardResults(replies, ShardFailurePolicy::kError, 2);
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(merged.result.answers, (std::vector<GraphId>{1, 3}));
  EXPECT_EQ(merged.result.stats.num_answers, 2u);
}

TEST(MergeTest, TimeoutPropagates) {
  ShardQueryReply slow = OkReply({4});
  slow.timed_out = true;
  slow.stats.timed_out = true;
  const MergedQuery merged = MergeShardResults(
      {OkReply({1}), slow}, ShardFailurePolicy::kError, 0);
  ASSERT_TRUE(merged.ok);
  EXPECT_TRUE(merged.result.stats.timed_out);  // partial answers: TIMEOUT
  EXPECT_EQ(merged.result.answers, (std::vector<GraphId>{1, 4}));
}

TEST(MergeTest, ErrorPolicyFailsOnAnyShardFailure) {
  const MergedQuery merged = MergeShardResults(
      {OkReply({1}), FailedReply("connection refused")},
      ShardFailurePolicy::kError, 0);
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.detail.find("shard 1"), std::string::npos);
  EXPECT_NE(merged.detail.find("connection refused"), std::string::npos);
}

TEST(MergeTest, DegradedPolicyMergesSurvivors) {
  const MergedQuery merged = MergeShardResults(
      {FailedReply("connection refused"), OkReply({2, 6})},
      ShardFailurePolicy::kDegraded, 0);
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(merged.result.answers, (std::vector<GraphId>{2, 6}));
  EXPECT_EQ(merged.shards.ok, 1u);
  EXPECT_EQ(merged.shards.total, 2u);
}

TEST(MergeTest, DegradedStillFailsWhenNoShardSurvives) {
  const MergedQuery merged = MergeShardResults(
      {FailedReply("down"), FailedReply("down")},
      ShardFailurePolicy::kDegraded, 0);
  EXPECT_FALSE(merged.ok);
  EXPECT_FALSE(merged.detail.empty());
}

TEST(MergeTest, ShardOverloadPropagatesUnderEitherPolicy) {
  ShardQueryReply overloaded = FailedReply("queue full");
  overloaded.overloaded = true;
  for (const ShardFailurePolicy policy :
       {ShardFailurePolicy::kError, ShardFailurePolicy::kDegraded}) {
    const MergedQuery merged =
        MergeShardResults({OkReply({1}), overloaded}, policy, 0);
    EXPECT_FALSE(merged.ok);
    EXPECT_NE(merged.detail.find("overloaded"), std::string::npos);
  }
}

TEST(MergeTest, NoShardsConfiguredFails) {
  const MergedQuery merged =
      MergeShardResults({}, ShardFailurePolicy::kDegraded, 0);
  EXPECT_FALSE(merged.ok);
}

}  // namespace
}  // namespace sgq
