// End-to-end acceptance test for the sharded serving stack: two real
// shard SocketServers plus a RouterServer, all in-process over Unix
// sockets (runs under the `tsan` ctest label). The core acceptance
// criterion is bit-identity — for every query, the router over 2 shards
// must produce the same response a single unsharded server produces,
// including the IDS line, the ordering, and LIMIT semantics. On top of
// that: STATS / RELOAD / CACHE CLEAR fan-out, the degraded-vs-error
// policies when a shard dies, reconnection after a shard restart, and a
// dead shard consuming deadline rather than hanging the router.
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gen/graph_gen.h"
#include "graph/graph_io.h"
#include "router/router_server.h"
#include "router/shard_map.h"
#include "service/server.h"
#include "tests/test_util.h"
#include "util/socket.h"
#include "util/timer.h"

namespace sgq {
namespace {

GraphDatabase SmallDb(uint32_t num_graphs = 40) {
  SyntheticParams params;
  params.num_graphs = num_graphs;
  params.vertices_per_graph = 16;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 21;
  return GenerateSyntheticDatabase(params);
}

std::string UniqueSocketPath(const char* tag) {
  return "/tmp/sgq_router_e2e_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// Minimal blocking line-protocol client (same shape as service_e2e_test).
class Client {
 public:
  bool Connect(const std::string& path) {
    std::string error;
    fd_ = ConnectUnix(path, &error);
    return fd_.valid();
  }

  bool Send(const std::string& bytes) { return WriteAll(fd_.get(), bytes); }

  bool RecvLine(std::string* line) {
    line->clear();
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[512];
      const ssize_t n = ReadSome(fd_.get(), chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // One QUERY ... IDS exchange. Returns the head line; *ids gets the IDS
  // continuation line when the head carries an answer count (OK/TIMEOUT),
  // "" otherwise.
  std::string QueryIds(const std::string& payload, std::string* ids,
                       uint64_t limit = 0, double timeout_seconds = 0) {
    std::string header = "QUERY " + std::to_string(payload.size());
    if (timeout_seconds > 0) header += ' ' + std::to_string(timeout_seconds);
    if (limit > 0) header += " LIMIT " + std::to_string(limit);
    header += " IDS\n";
    ids->clear();
    std::string line;
    if (!Send(header) || !Send(payload) || !RecvLine(&line)) return "";
    const ResponseHead head = ParseResponseHead(line);
    if (head.has_count && !RecvLine(ids)) return "";
    return line;
  }

  // One QUERY ... STREAM exchange: consumes incremental IDS chunk lines
  // into `ids` and returns the terminal line ("" on drop/bad chunk).
  std::string StreamQuery(const std::string& payload, uint64_t limit,
                          std::vector<GraphId>* ids) {
    std::string header = "QUERY " + std::to_string(payload.size());
    if (limit > 0) header += " LIMIT " + std::to_string(limit);
    header += " STREAM\n";
    ids->clear();
    if (!Send(header) || !Send(payload)) return "";
    std::string line;
    for (;;) {
      if (!RecvLine(&line)) return "";
      if (line.rfind("IDS", 0) != 0) return line;
      if (!ParseIdsChunk(line, ids)) return "";
    }
  }

 private:
  UniqueFd fd_;
  std::string buffer_;
};

// SocketServer::Start consumes the database by value; tests keep a master
// copy and hand out clones.
GraphDatabase Clone(const GraphDatabase& db) {
  GraphDatabase copy;
  for (const Graph& g : db.graphs()) copy.Add(g);
  return copy;
}

// A 2-shard fleet plus router, torn down in reverse order.
struct Fleet {
  static constexpr uint32_t kShards = 2;

  std::string shard_paths[kShards];
  std::unique_ptr<SocketServer> shards[kShards];
  std::string router_path;
  std::unique_ptr<RouterServer> router;

  bool StartShard(uint32_t i, GraphDatabase db, std::string* error,
                  const std::string& db_path = "") {
    ServerConfig server_config;
    server_config.unix_path = shard_paths[i];
    server_config.db_path = db_path;
    server_config.shard_index = i;
    server_config.shard_count = kShards;
    ServiceConfig service_config;
    service_config.workers = 2;
    service_config.queue_capacity = 16;
    shards[i] = std::make_unique<SocketServer>(server_config, service_config);
    return shards[i]->Start(std::move(db), error);
  }

  bool Start(const GraphDatabase& db, ShardFailurePolicy policy,
             std::string* error, const std::string& db_path = "",
             uint32_t cache_mb = 0) {
    for (uint32_t i = 0; i < kShards; ++i) {
      shard_paths[i] = UniqueSocketPath(("shard" + std::to_string(i)).c_str());
      if (!StartShard(i, Clone(db), error, db_path)) return false;
    }
    router_path = UniqueSocketPath("router");
    RouterServerConfig server_config;
    server_config.unix_path = router_path;
    server_config.cache_mb = cache_mb;
    RouterConfig router_config;
    for (uint32_t i = 0; i < kShards; ++i) {
      ShardEndpoint endpoint;
      endpoint.unix_path = shard_paths[i];
      router_config.shards.push_back(endpoint);
    }
    router_config.on_shard_failure = policy;
    router_config.forward_shutdown = false;  // the test owns the shards
    router = std::make_unique<RouterServer>(server_config, router_config);
    return router->Start(error);
  }

  void StopShard(uint32_t i) {
    shards[i]->RequestStop();
    shards[i]->Wait();
  }

  void Stop() {
    if (router) {
      router->RequestStop();
      router->Wait();
    }
    for (uint32_t i = 0; i < kShards; ++i) {
      if (shards[i]) StopShard(i);
    }
  }
};

TEST(RouterE2eTest, MatchesUnshardedServerBitForBit) {
  const GraphDatabase db = SmallDb();

  // Reference: one unsharded server over the same database.
  const std::string reference_path = UniqueSocketPath("reference");
  ServerConfig reference_config;
  reference_config.unix_path = reference_path;
  ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_capacity = 16;
  SocketServer reference(reference_config, service_config);
  std::string error;
  ASSERT_TRUE(reference.Start(Clone(db), &error)) << error;

  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db), ShardFailurePolicy::kError, &error))
      << error;
  // Sanity: the shards really did split the database.
  const uint64_t shard_graphs[2] = {fleet.shards[0]->Stats().db_graphs,
                                    fleet.shards[1]->Stats().db_graphs};
  EXPECT_GT(shard_graphs[0], 0u);
  EXPECT_GT(shard_graphs[1], 0u);
  EXPECT_EQ(shard_graphs[0] + shard_graphs[1], db.size());

  Client direct, routed;
  ASSERT_TRUE(direct.Connect(reference_path));
  ASSERT_TRUE(routed.Connect(fleet.router_path));

  // Database graphs as queries (each matches at least itself) plus small
  // patterns that match many graphs — exercising empty, sparse and dense
  // answer sets across both shards.
  std::vector<std::string> payloads;
  for (GraphId id = 0; id < 10; ++id) {
    payloads.push_back(SerializeGraph(db.graph(id), id));
  }
  payloads.push_back(SerializeGraph(sgq::testing::MakePath({0, 1}), 0));
  payloads.push_back(SerializeGraph(sgq::testing::MakePath({2, 3, 1}), 0));
  payloads.push_back(SerializeGraph(sgq::testing::MakeCycle({0, 1, 2}), 0));
  // An un-matchable query: label outside the generator's universe.
  payloads.push_back(SerializeGraph(sgq::testing::MakePath({9, 9}), 0));

  uint64_t nonempty = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    SCOPED_TRACE("payload " + std::to_string(i));
    std::string direct_ids, routed_ids;
    const std::string direct_line = direct.QueryIds(payloads[i], &direct_ids);
    const std::string routed_line = routed.QueryIds(payloads[i], &routed_ids);

    // The IDS line is the whole acceptance criterion: same match set, same
    // (sorted) order, byte for byte.
    EXPECT_EQ(routed_ids, direct_ids);
    if (direct_ids != "IDS") ++nonempty;

    // Head lines: identical outcome and answer count; stats timings may
    // differ, but the router's json must carry the shard-health fields.
    const ResponseHead direct_head = ParseResponseHead(direct_line);
    const ResponseHead routed_head = ParseResponseHead(routed_line);
    ASSERT_EQ(direct_head.kind, ResponseHead::Kind::kOk) << direct_line;
    ASSERT_EQ(routed_head.kind, ResponseHead::Kind::kOk) << routed_line;
    EXPECT_EQ(routed_head.num_answers, direct_head.num_answers);
    EXPECT_EQ(direct_head.body.find("\"shards_ok\""), std::string::npos);
    ShardHealth health;
    ASSERT_TRUE(ParseShardHealth(routed_head.body, &health)) << routed_line;
    EXPECT_EQ(health.ok, 2u);
    EXPECT_EQ(health.total, 2u);
  }
  EXPECT_GE(nonempty, 10u);  // the comparison actually compared answers

  // LIMIT k must agree bit-for-bit too: per-shard truncation + post-merge
  // take-k == unsharded take-k.
  for (const uint64_t limit : {1ull, 2ull, 7ull}) {
    SCOPED_TRACE("limit " + std::to_string(limit));
    const std::string payload =
        SerializeGraph(sgq::testing::MakePath({0, 1}), 0);
    std::string direct_ids, routed_ids;
    const std::string direct_line =
        direct.QueryIds(payload, &direct_ids, limit);
    const std::string routed_line =
        routed.QueryIds(payload, &routed_ids, limit);
    EXPECT_EQ(routed_ids, direct_ids);
    EXPECT_EQ(ParseResponseHead(routed_line).num_answers,
              ParseResponseHead(direct_line).num_answers);
  }

  // Router STATS: one object embedding the router counters and both
  // shards' stats jsons.
  std::string line;
  ASSERT_TRUE(routed.Send("STATS\n"));
  ASSERT_TRUE(routed.RecvLine(&line));
  ASSERT_EQ(line.rfind("OK {\"router\":{", 0), 0u) << line;
  EXPECT_NE(line.find("\"shards_total\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"bad_requests\":0"), std::string::npos) << line;
  const size_t shards_array = line.find("\"shards\":[{");
  ASSERT_NE(shards_array, std::string::npos) << line;
  EXPECT_NE(line.find("},{", shards_array), std::string::npos) << line;
  EXPECT_EQ(line.find("null"), std::string::npos) << line;

  fleet.Stop();
  reference.RequestStop();
  reference.Wait();
}

TEST(RouterE2eTest, ReloadAndCacheClearFanOutToEveryShard) {
  // db2 = db1 plus a pentagon with a label absent from db1, as in
  // service_e2e_test: RELOAD through the router must swap every shard, and
  // the merged answer set must include the new graph at its global id.
  const Graph pentagon = sgq::testing::MakeCycle({7, 7, 7, 7, 7});
  GraphDatabase db1 = SmallDb(10);
  GraphDatabase db2 = Clone(db1);
  db2.Add(pentagon);
  const std::string db2_path =
      "/tmp/sgq_router_e2e_db2_" + std::to_string(::getpid()) + ".txt";
  std::string error;
  ASSERT_TRUE(SaveDatabase(db2, db2_path, &error)) << error;

  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db1), ShardFailurePolicy::kError, &error))
      << error;
  Client client;
  ASSERT_TRUE(client.Connect(fleet.router_path));

  const std::string pentagon_payload = SerializeGraph(pentagon, 0);
  std::string ids;
  std::string line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS") << "pentagon matched before the reload: " << line;

  // RELOAD @file fans out; the router sums the per-shard counts, which
  // must cover the whole database exactly once.
  ASSERT_TRUE(client.Send("RELOAD @" + db2_path + "\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK reloaded 11 graphs") << line;

  // The new graph is answer 10 in global ids — whichever shard owns it.
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS 10") << line;

  // CACHE CLEAR fans out and reports the single-server success line.
  ASSERT_TRUE(client.Send("CACHE CLEAR\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK cache cleared");
  // Same answers after the clear (now re-executed on every shard).
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS 10") << line;

  fleet.Stop();
  ::unlink(db2_path.c_str());
}

TEST(RouterE2eTest, StreamedRoutedQueryMatchesBatchMerge) {
  // The router's incremental k-way merge must emit exactly the ids the
  // batch merge produces — same set, same global sorted order, at every
  // LIMIT — with the terminal count matching what was streamed.
  const GraphDatabase db = SmallDb();
  std::string error;
  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db), ShardFailurePolicy::kError, &error))
      << error;
  Client client;
  ASSERT_TRUE(client.Connect(fleet.router_path));

  std::vector<std::string> payloads;
  for (GraphId id = 0; id < 6; ++id) {
    payloads.push_back(SerializeGraph(db.graph(id), id));
  }
  payloads.push_back(SerializeGraph(sgq::testing::MakePath({0, 1}), 0));
  payloads.push_back(SerializeGraph(sgq::testing::MakeCycle({0, 1, 2}), 0));
  payloads.push_back(SerializeGraph(sgq::testing::MakePath({9, 9}), 0));

  uint64_t nonempty = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    SCOPED_TRACE("payload " + std::to_string(i));
    std::string batch_ids_line;
    const std::string batch_line =
        client.QueryIds(payloads[i], &batch_ids_line);
    const ResponseHead batch_head = ParseResponseHead(batch_line);
    ASSERT_EQ(batch_head.kind, ResponseHead::Kind::kOk) << batch_line;
    std::vector<GraphId> batch_ids;
    ASSERT_TRUE(
        ParseIdsLine(batch_ids_line, batch_head.num_answers, &batch_ids));

    std::vector<GraphId> streamed;
    const std::string stream_line =
        client.StreamQuery(payloads[i], /*limit=*/0, &streamed);
    ASSERT_EQ(stream_line.rfind("OK ", 0), 0u) << stream_line;
    EXPECT_EQ(streamed, batch_ids);
    EXPECT_EQ(ParseResponseHead(stream_line).num_answers, streamed.size());
    if (!batch_ids.empty()) ++nonempty;
  }
  EXPECT_GE(nonempty, 6u);

  // LIMIT through the streamed merge: the post-merge cut emits exactly
  // the first k of the batch-merged ids.
  const std::string payload = SerializeGraph(sgq::testing::MakePath({0, 1}), 0);
  std::string full_ids_line;
  const std::string full_line = client.QueryIds(payload, &full_ids_line);
  const ResponseHead full_head = ParseResponseHead(full_line);
  std::vector<GraphId> full_ids;
  ASSERT_TRUE(ParseIdsLine(full_ids_line, full_head.num_answers, &full_ids));
  ASSERT_GE(full_ids.size(), 3u);
  for (const uint64_t limit : {uint64_t{1}, uint64_t{3},
                               static_cast<uint64_t>(full_ids.size() + 4)}) {
    SCOPED_TRACE("limit " + std::to_string(limit));
    std::vector<GraphId> streamed;
    const std::string line = client.StreamQuery(payload, limit, &streamed);
    ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
    const size_t expect =
        std::min<size_t>(static_cast<size_t>(limit), full_ids.size());
    ASSERT_EQ(streamed.size(), expect);
    EXPECT_TRUE(
        std::equal(streamed.begin(), streamed.end(), full_ids.begin()));
  }

  fleet.Stop();
}

// Router cache json section, between the router object and the shards
// array (the per-shard stats have their own "cache" objects further on).
std::string RouterCacheJson(const std::string& stats_line) {
  const size_t begin = stats_line.find("\"cache\":{");
  const size_t end = stats_line.find("\"shards\":[");
  if (begin == std::string::npos || end == std::string::npos || begin > end) {
    return "";
  }
  return stats_line.substr(begin, end - begin);
}

uint64_t CacheCounter(const std::string& cache_json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = cache_json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << cache_json;
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(cache_json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(RouterE2eTest, RouterCacheHitsAndInvalidatesOnReload) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  const Graph pentagon = sgq::testing::MakeCycle({7, 7, 7, 7, 7});
  GraphDatabase db1 = SmallDb(10);
  GraphDatabase db2 = Clone(db1);
  db2.Add(pentagon);
  const std::string db2_path =
      "/tmp/sgq_router_e2e_cache_db2_" + std::to_string(::getpid()) + ".txt";
  std::string error;
  ASSERT_TRUE(SaveDatabase(db2, db2_path, &error)) << error;

  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db1), ShardFailurePolicy::kError, &error,
                          /*db_path=*/"", /*cache_mb=*/8))
      << error;
  Client client;
  ASSERT_TRUE(client.Connect(fleet.router_path));

  // First full query misses and populates; the identical repeat hits and
  // returns the same bytes (including the synthesized 2/2 shard health).
  const std::string payload = SerializeGraph(sgq::testing::MakePath({0, 1}), 0);
  std::string first_ids, second_ids, line;
  const std::string first = client.QueryIds(payload, &first_ids);
  ASSERT_EQ(ParseResponseHead(first).kind, ResponseHead::Kind::kOk) << first;
  const std::string second = client.QueryIds(payload, &second_ids);
  EXPECT_EQ(second_ids, first_ids);
  ShardHealth health;
  ASSERT_TRUE(ParseShardHealth(ParseResponseHead(second).body, &health));
  EXPECT_EQ(health.ok, 2u);
  EXPECT_EQ(health.total, 2u);

  ASSERT_TRUE(client.Send("STATS\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  std::string cache_json = RouterCacheJson(line);
  ASSERT_FALSE(cache_json.empty()) << line;
  EXPECT_EQ(CacheCounter(cache_json, "hits"), 1u);
  EXPECT_GE(CacheCounter(cache_json, "entries"), 1u);

  // A LIMIT request is served as the cached full result's prefix.
  const ResponseHead first_head = ParseResponseHead(first);
  std::vector<GraphId> full_ids;
  ASSERT_TRUE(ParseIdsLine(first_ids, first_head.num_answers, &full_ids));
  ASSERT_GE(full_ids.size(), 2u);
  std::string limited_ids;
  const std::string limited = client.QueryIds(payload, &limited_ids, 2);
  std::vector<GraphId> limited_vec;
  ASSERT_TRUE(
      ParseIdsLine(limited_ids, ParseResponseHead(limited).num_answers,
                   &limited_vec));
  EXPECT_EQ(limited_vec,
            (std::vector<GraphId>{full_ids[0], full_ids[1]}));

  // Cache the pentagon's pre-reload empty answer, reload through the
  // router, and verify the stale entry is unreachable: the post-reload
  // query must see the new graph, not the cached miss.
  const std::string pentagon_payload = SerializeGraph(pentagon, 0);
  std::string ids;
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS") << line;
  ASSERT_TRUE(client.Send("RELOAD @" + db2_path + "\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK reloaded 11 graphs") << line;
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS 10") << line;

  // CACHE CLEAR drops the router cache too.
  ASSERT_TRUE(client.Send("CACHE CLEAR\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK cache cleared");
  ASSERT_TRUE(client.Send("STATS\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  cache_json = RouterCacheJson(line);
  ASSERT_FALSE(cache_json.empty()) << line;
  EXPECT_EQ(CacheCounter(cache_json, "entries"), 0u);

  fleet.Stop();
  ::unlink(db2_path.c_str());
}

TEST(RouterE2eTest, KilledShardDegradesOrErrorsPerPolicy) {
  const GraphDatabase db = SmallDb();
  const std::string payload = SerializeGraph(sgq::testing::MakePath({0, 1}), 0);
  std::string error;

  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db), ShardFailurePolicy::kDegraded, &error))
      << error;
  // A second router over the same shards with the strict policy, so both
  // behaviors are observed against the same kill.
  const std::string strict_path = UniqueSocketPath("strict");
  RouterServerConfig strict_config;
  strict_config.unix_path = strict_path;
  RouterConfig strict_router;
  for (const std::string& path : fleet.shard_paths) {
    ShardEndpoint endpoint;
    endpoint.unix_path = path;
    strict_router.shards.push_back(endpoint);
  }
  strict_router.on_shard_failure = ShardFailurePolicy::kError;
  strict_router.forward_shutdown = false;
  RouterServer strict(strict_config, strict_router);
  ASSERT_TRUE(strict.Start(&error)) << error;

  Client degraded_client, strict_client;
  ASSERT_TRUE(degraded_client.Connect(fleet.router_path));
  ASSERT_TRUE(strict_client.Connect(strict_path));

  // Healthy fleet first: both routers serve the full answer set.
  std::string full_ids, ids;
  std::string line = degraded_client.QueryIds(payload, &full_ids);
  const ResponseHead healthy_head = ParseResponseHead(line);
  ASSERT_EQ(healthy_head.kind, ResponseHead::Kind::kOk) << line;
  EXPECT_NE(full_ids, "IDS");
  std::vector<GraphId> healthy_answers;
  ASSERT_TRUE(
      ParseIdsLine(full_ids, healthy_head.num_answers, &healthy_answers));
  line = strict_client.QueryIds(payload, &ids);
  EXPECT_EQ(ids, full_ids);

  // Kill shard 1 (graceful stop — its socket disappears).
  fleet.StopShard(1);

  // Degraded policy: a well-formed OK response, answers = shard 0's slice
  // only (a strict subset of the healthy answer set, still sorted), with
  // shards_ok 1 of 2 in the stats.
  line = degraded_client.QueryIds(payload, &ids, 0, 5.0);
  const ResponseHead degraded_head = ParseResponseHead(line);
  ASSERT_EQ(degraded_head.kind, ResponseHead::Kind::kOk) << line;
  ShardHealth health;
  ASSERT_TRUE(ParseShardHealth(degraded_head.body, &health)) << line;
  EXPECT_EQ(health.ok, 1u);
  EXPECT_EQ(health.total, 2u);
  EXPECT_NE(ids, "IDS");
  EXPECT_NE(ids, full_ids);
  // Every surviving id was in the healthy answer set and belongs to shard 0.
  std::vector<GraphId> survivors;
  ASSERT_TRUE(ParseIdsLine(ids, degraded_head.num_answers, &survivors)) << ids;
  for (const GraphId id : survivors) {
    EXPECT_TRUE(std::find(healthy_answers.begin(), healthy_answers.end(),
                          id) != healthy_answers.end())
        << id;
    EXPECT_EQ(ShardOfGraph(id, Fleet::kShards), 0u);
  }

  // Error policy: the same query is refused, naming the dead shard.
  line = strict_client.QueryIds(payload, &ids, 0, 5.0);
  EXPECT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;
  EXPECT_NE(line.find("shard 1"), std::string::npos) << line;

  // Restart shard 1 on the same socket: both routers reconnect and the
  // full fleet answer comes back bit-identical to the pre-kill one.
  ASSERT_TRUE(fleet.StartShard(1, Clone(db), &error)) << error;
  line = degraded_client.QueryIds(payload, &ids);
  EXPECT_EQ(ids, full_ids) << line;
  line = strict_client.QueryIds(payload, &ids);
  EXPECT_EQ(ids, full_ids) << line;

  strict.RequestStop();
  strict.Wait();
  fleet.Stop();
}

TEST(RouterE2eTest, DeadShardConsumesDeadlineNotForever) {
  // Shard 1's endpoint is never bound: every connect fails immediately.
  // The router must turn that into a prompt OVERLOADED under the error
  // policy — a dead shard costs (at most) the request budget, not a hang.
  const GraphDatabase db = SmallDb(10);
  const std::string live_path = UniqueSocketPath("live");
  ServerConfig server_config;
  server_config.unix_path = live_path;
  server_config.shard_index = 0;
  server_config.shard_count = 2;
  ServiceConfig service_config;
  service_config.workers = 1;
  service_config.queue_capacity = 4;
  SocketServer live(server_config, service_config);
  std::string error;
  ASSERT_TRUE(live.Start(Clone(db), &error)) << error;

  const std::string router_path = UniqueSocketPath("deadline");
  RouterServerConfig router_server_config;
  router_server_config.unix_path = router_path;
  RouterConfig router_config;
  ShardEndpoint endpoint;
  endpoint.unix_path = live_path;
  router_config.shards.push_back(endpoint);
  endpoint.unix_path = UniqueSocketPath("never_bound");
  router_config.shards.push_back(endpoint);
  router_config.on_shard_failure = ShardFailurePolicy::kError;
  router_config.forward_shutdown = false;
  RouterServer router(router_server_config, router_config);
  ASSERT_TRUE(router.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(router_path));
  const std::string payload =
      SerializeGraph(sgq::testing::MakePath({0, 1}), 0);
  WallTimer timer;
  std::string ids;
  const std::string line = client.QueryIds(payload, &ids, 0, 2.0);
  EXPECT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;
  // Bound generously for loaded CI machines; the point is "seconds, not
  // the 600 s default timeout".
  EXPECT_LT(timer.ElapsedMillis(), 30'000.0);

  const RouterStatsSnapshot stats = router.Stats();
  EXPECT_EQ(stats.received, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_GE(stats.shard_failures, 1u);

  router.RequestStop();
  router.Wait();
  live.RequestStop();
  live.Wait();
}

// The mutation acceptance criterion for sharding: an interleaved stream
// of ADD/REMOVE/QUERY through the router over 2 shards stays bit-identical
// to the same stream against one unsharded server. Both id spaces start at
// 40 (the seed size) and assign sequentially, so the gids line up without
// any test-side mapping. Also checks that each ADD lands on its splitmix64
// owner shard and that the router refuses client-supplied ids.
TEST(RouterE2eTest, MutationStreamMatchesUnshardedServerBitForBit) {
  const GraphDatabase db = SmallDb();

  const std::string reference_path = UniqueSocketPath("mut_reference");
  ServerConfig reference_config;
  reference_config.unix_path = reference_path;
  ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_capacity = 16;
  SocketServer reference(reference_config, service_config);
  std::string error;
  ASSERT_TRUE(reference.Start(Clone(db), &error)) << error;

  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db), ShardFailurePolicy::kError, &error))
      << error;

  Client direct, routed;
  ASSERT_TRUE(direct.Connect(reference_path));
  ASSERT_TRUE(routed.Connect(fleet.router_path));

  const std::vector<std::string> probes = {
      SerializeGraph(sgq::testing::MakePath({0, 1}), 0),
      SerializeGraph(sgq::testing::MakeCycle({0, 1, 2}), 0),
      SerializeGraph(sgq::testing::MakeCycle({7, 7, 7, 7, 7}), 0),
      SerializeGraph(db.graph(3), 3),
      SerializeGraph(sgq::testing::MakePath({9, 9}), 0),
  };
  auto expect_bit_identity = [&](const char* when) {
    for (size_t i = 0; i < probes.size(); ++i) {
      SCOPED_TRACE(std::string(when) + ", probe " + std::to_string(i));
      std::string direct_ids, routed_ids;
      const std::string direct_line = direct.QueryIds(probes[i], &direct_ids);
      const std::string routed_line = routed.QueryIds(probes[i], &routed_ids);
      ASSERT_EQ(ParseResponseHead(direct_line).kind, ResponseHead::Kind::kOk)
          << direct_line;
      ASSERT_EQ(ParseResponseHead(routed_line).kind, ResponseHead::Kind::kOk)
          << routed_line;
      EXPECT_EQ(routed_ids, direct_ids);
      EXPECT_EQ(ParseResponseHead(routed_line).num_answers,
                ParseResponseHead(direct_line).num_answers);
    }
  };
  // ADD the same graph to both stacks; the assigned gids must agree, and
  // the routed copy must land on the gid's splitmix64 owner.
  auto add_both = [&](const Graph& graph) -> GraphId {
    const std::string text = SerializeGraph(graph, 0);
    const std::string header =
        "ADD GRAPH " + std::to_string(text.size()) + "\n";
    const uint64_t before[2] = {fleet.shards[0]->Stats().db_graphs,
                                fleet.shards[1]->Stats().db_graphs};
    std::string direct_line, routed_line;
    EXPECT_TRUE(direct.Send(header) && direct.Send(text) &&
                direct.RecvLine(&direct_line));
    EXPECT_TRUE(routed.Send(header) && routed.Send(text) &&
                routed.RecvLine(&routed_line));
    GraphId direct_gid = 0, routed_gid = 0;
    EXPECT_TRUE(ParseAddedResponse(direct_line, &direct_gid)) << direct_line;
    EXPECT_TRUE(ParseAddedResponse(routed_line, &routed_gid)) << routed_line;
    EXPECT_EQ(routed_gid, direct_gid);
    const uint32_t owner = ShardOfGraph(routed_gid, Fleet::kShards);
    EXPECT_EQ(fleet.shards[owner]->Stats().db_graphs, before[owner] + 1);
    EXPECT_EQ(fleet.shards[1 - owner]->Stats().db_graphs, before[1 - owner]);
    return routed_gid;
  };
  auto remove_both = [&](GraphId gid) {
    const std::string command = "REMOVE GRAPH " + std::to_string(gid) + "\n";
    std::string direct_line, routed_line;
    EXPECT_TRUE(direct.Send(command) && direct.RecvLine(&direct_line));
    EXPECT_TRUE(routed.Send(command) && routed.RecvLine(&routed_line));
    GraphId acked = 0;
    EXPECT_TRUE(ParseRemovedResponse(direct_line, &acked)) << direct_line;
    EXPECT_TRUE(ParseRemovedResponse(routed_line, &acked)) << routed_line;
    EXPECT_EQ(acked, gid);
  };

  expect_bit_identity("baseline");
  const GraphId pentagon_gid =
      add_both(sgq::testing::MakeCycle({7, 7, 7, 7, 7}));
  EXPECT_EQ(pentagon_gid, 40u);
  expect_bit_identity("after first add");
  add_both(sgq::testing::MakeCycle({0, 1, 2}));
  expect_bit_identity("after second add");
  remove_both(3);  // a seed graph: surviving global ids must not shift
  expect_bit_identity("after seed remove");
  remove_both(pentagon_gid);
  expect_bit_identity("after added-graph remove");
  add_both(sgq::testing::MakePath({0, 1, 2, 3}));
  expect_bit_identity("after re-add");

  // The router owns the id space: a client-supplied id is refused without
  // burning an id, and the connection survives.
  const std::string text = SerializeGraph(sgq::testing::MakePath({1, 2}), 0);
  std::string line;
  ASSERT_TRUE(routed.Send("ADD GRAPH " + std::to_string(text.size()) +
                          " ID 99\n") &&
              routed.Send(text));
  ASSERT_TRUE(routed.RecvLine(&line));
  EXPECT_EQ(line.rfind("BAD_REQUEST", 0), 0u) << line;
  EXPECT_NE(line.find("without ID"), std::string::npos) << line;

  // A dead id surfaces the owner shard's failure as OVERLOADED.
  ASSERT_TRUE(routed.Send("REMOVE GRAPH " + std::to_string(pentagon_gid) +
                          "\n"));
  ASSERT_TRUE(routed.RecvLine(&line));
  EXPECT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;

  // Still bit-identical after the failure probes (neither burned an id).
  add_both(sgq::testing::MakeCycle({1, 2, 3}));
  expect_bit_identity("after failure probes");

  fleet.Stop();
  reference.RequestStop();
  reference.Wait();
}

// The router's id counter is soft state: a fresh router over a mutated
// fleet resumes above every shard's next_global_id, and after a RELOAD
// the re-derived counter still clears every id the fleet ever assigned.
TEST(RouterE2eTest, RouterIdSpaceSurvivesRestartAndReload) {
  GraphDatabase db = SmallDb(10);
  const std::string db_path =
      "/tmp/sgq_router_e2e_idspace_" + std::to_string(::getpid()) + ".txt";
  std::string error;
  ASSERT_TRUE(SaveDatabase(db, db_path, &error)) << error;

  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db), ShardFailurePolicy::kError, &error))
      << error;

  const std::string text =
      SerializeGraph(sgq::testing::MakeCycle({7, 7, 7, 7, 7}), 0);
  const std::string header = "ADD GRAPH " + std::to_string(text.size()) + "\n";
  auto add_via = [&](Client* client) -> GraphId {
    std::string line;
    EXPECT_TRUE(client->Send(header) && client->Send(text) &&
                client->RecvLine(&line));
    GraphId gid = ~GraphId{0};
    EXPECT_TRUE(ParseAddedResponse(line, &gid)) << line;
    return gid;
  };

  {
    Client client;
    ASSERT_TRUE(client.Connect(fleet.router_path));
    EXPECT_EQ(add_via(&client), 10u);
    EXPECT_EQ(add_via(&client), 11u);
  }

  // Restart only the router: the shards remember the mutations, and the
  // new router's lazily-derived counter must clear both of them.
  fleet.router->RequestStop();
  fleet.router->Wait();
  RouterServerConfig server_config;
  server_config.unix_path = fleet.router_path;
  RouterConfig router_config;
  for (const std::string& path : fleet.shard_paths) {
    ShardEndpoint endpoint;
    endpoint.unix_path = path;
    router_config.shards.push_back(endpoint);
  }
  router_config.on_shard_failure = ShardFailurePolicy::kError;
  router_config.forward_shutdown = false;
  fleet.router = std::make_unique<RouterServer>(server_config, router_config);
  ASSERT_TRUE(fleet.router->Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(fleet.router_path));
  EXPECT_EQ(add_via(&client), 12u);

  // RELOAD rewinds the fleet to the 10-graph seed. The router forgets its
  // counter and re-derives it from the shards — whose id spaces stay
  // monotone across a reload (ids are never reused within a server
  // lifetime, so cached global ids cannot alias a different graph). The
  // next ADD therefore continues at 13, not back at 10.
  std::string line;
  ASSERT_TRUE(client.Send("RELOAD @" + db_path + "\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK reloaded 10 graphs") << line;
  EXPECT_EQ(add_via(&client), 13u);

  fleet.Stop();
  ::unlink(db_path.c_str());
}

// Selective invalidation in the router cache: a mutation purges exactly
// the entries it can affect. An entry whose labels the new graph cannot
// cover stays hittable across an ADD; the purged query re-executes and
// sees the new graph; a REMOVE purges entries whose answers contain the
// gid.
TEST(RouterE2eTest, RouterCacheInvalidatesSelectivelyOnMutation) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  const GraphDatabase db = SmallDb(10);
  std::string error;
  Fleet fleet;
  ASSERT_TRUE(fleet.Start(Clone(db), ShardFailurePolicy::kError, &error,
                          /*db_path=*/"", /*cache_mb=*/8))
      << error;
  Client client;
  ASSERT_TRUE(client.Connect(fleet.router_path));

  const std::string path_payload =
      SerializeGraph(sgq::testing::MakePath({0, 1}), 0);
  const std::string pentagon_payload =
      SerializeGraph(sgq::testing::MakeCycle({7, 7, 7, 7, 7}), 0);
  auto router_hits = [&]() -> uint64_t {
    std::string line;
    EXPECT_TRUE(client.Send("STATS\n") && client.RecvLine(&line));
    const std::string cache_json = RouterCacheJson(line);
    EXPECT_FALSE(cache_json.empty()) << line;
    return CacheCounter(cache_json, "hits");
  };

  // Warm both entries: a label-{0,1} answer and the pentagon's empty one.
  std::string ids, line;
  ASSERT_EQ(ParseResponseHead(client.QueryIds(path_payload, &ids)).kind,
            ResponseHead::Kind::kOk);
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS") << line;
  const uint64_t hits_before = router_hits();

  // ADD a pentagon: its label set {7} cannot cover a {0,1} query, so that
  // entry survives; the pentagon entry is subsumed and must be purged.
  ASSERT_TRUE(client.Send("ADD GRAPH " +
                          std::to_string(pentagon_payload.size()) + "\n") &&
              client.Send(pentagon_payload));
  ASSERT_TRUE(client.RecvLine(&line));
  GraphId gid = 0;
  ASSERT_TRUE(ParseAddedResponse(line, &gid)) << line;
  EXPECT_EQ(gid, 10u);

  ASSERT_EQ(ParseResponseHead(client.QueryIds(path_payload, &ids)).kind,
            ResponseHead::Kind::kOk);
  EXPECT_EQ(router_hits(), hits_before + 1) << "survivor entry did not hit";
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS 10") << "stale empty answer served after ADD: " << line;

  // REMOVE purges by answer membership: the pentagon entry (answer {10})
  // dies, the {0,1} entry keeps hitting.
  ASSERT_TRUE(client.Send("REMOVE GRAPH 10\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  GraphId removed = 0;
  ASSERT_TRUE(ParseRemovedResponse(line, &removed)) << line;
  const uint64_t hits_mid = router_hits();
  line = client.QueryIds(pentagon_payload, &ids);
  EXPECT_EQ(ids, "IDS") << "stale answer served after REMOVE: " << line;
  ASSERT_EQ(ParseResponseHead(client.QueryIds(path_payload, &ids)).kind,
            ResponseHead::Kind::kOk);
  EXPECT_EQ(router_hits(), hits_mid + 1);

  fleet.Stop();
}

}  // namespace
}  // namespace sgq
