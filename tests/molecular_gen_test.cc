// Properties of the molecule-like generator and the locality option.
#include <gtest/gtest.h>

#include <cmath>
#include "gen/graph_gen.h"
#include "graph/graph_utils.h"
#include "util/rng.h"

namespace sgq {
namespace {

TEST(MoleculeGenTest, ExactEdgeCountAndConnected) {
  Rng rng(1);
  std::vector<Label> labels = {0, 1, 2};
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t n = 10 + static_cast<uint32_t>(rng.NextBounded(60));
    const double degree = 2.0 + rng.NextDouble();  // molecule range
    const Graph g = GenerateMoleculeLikeGraph(n, degree, labels, &rng);
    EXPECT_EQ(g.NumVertices(), n);
    EXPECT_EQ(g.NumEdges(),
              static_cast<uint64_t>(std::llround(degree * n / 2.0)));
    EXPECT_TRUE(IsConnected(g)) << "trial " << trial;
  }
}

TEST(MoleculeGenTest, HasTheRequestedNumberOfRings) {
  // Cyclomatic number = |E| - |V| + 1 for connected graphs; the generator
  // realizes each unit as a fused small ring.
  Rng rng(2);
  std::vector<Label> labels = {0};
  const Graph g = GenerateMoleculeLikeGraph(45, 2.09, labels, &rng);
  const int64_t cyclomatic =
      static_cast<int64_t>(g.NumEdges()) - g.NumVertices() + 1;
  EXPECT_GE(cyclomatic, 1);
  EXPECT_FALSE(IsAcyclic(g));
  // The 2-core (the fused-ring cluster) is non-empty and compact.
  const auto core = TwoCoreMembership(g);
  uint32_t core_size = 0;
  for (bool b : core) core_size += b;
  EXPECT_GT(core_size, 4u);          // at least one full ring
  EXPECT_LT(core_size, g.NumVertices());  // chains exist too
}

TEST(MoleculeGenTest, FallsBackForTreeBudgets) {
  Rng rng(3);
  std::vector<Label> labels = {0};
  // degree < 2 => cyclomatic < 1 => plain random generator.
  const Graph g = GenerateMoleculeLikeGraph(20, 1.5, labels, &rng);
  EXPECT_EQ(g.NumVertices(), 20u);
  EXPECT_EQ(g.NumEdges(), 15u);
}

TEST(MoleculeGenTest, TinyGraphsSupported) {
  Rng rng(4);
  std::vector<Label> labels = {0};
  for (uint32_t n : {1u, 2u, 5u, 6u, 7u}) {
    const Graph g = GenerateMoleculeLikeGraph(n, 2.2, labels, &rng);
    EXPECT_EQ(g.NumVertices(), n);
  }
}

TEST(LocalityGenTest, LocalityRaisesShortCycleCount) {
  Rng rng(5);
  std::vector<Label> labels = {0};
  // Compare triangle counts at locality 0 vs 0.9 (same size/degree).
  auto count_triangles = [](const Graph& g) {
    uint64_t count = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (VertexId u : g.Neighbors(v)) {
        if (u <= v) continue;
        for (VertexId w : g.Neighbors(u)) {
          if (w > u && g.HasEdge(v, w)) ++count;
        }
      }
    }
    return count;
  };
  uint64_t uniform = 0, local = 0;
  for (int trial = 0; trial < 10; ++trial) {
    uniform += count_triangles(
        GenerateRandomGraph(100, 6.0, labels, &rng, /*edge_locality=*/0.0));
    local += count_triangles(
        GenerateRandomGraph(100, 6.0, labels, &rng, /*edge_locality=*/0.9));
  }
  EXPECT_GT(local, uniform * 2);
}

TEST(SyntheticStructureTest, MolecularDatabaseKeepsStats) {
  SyntheticParams params;
  params.num_graphs = 30;
  params.vertices_per_graph = 45;
  params.degree = 2.09;
  params.num_labels = 10;
  params.structure = SyntheticParams::Structure::kMolecular;
  params.size_jitter = 0.0;
  params.seed = 6;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  const DatabaseStats s = db.ComputeStats();
  EXPECT_DOUBLE_EQ(s.avg_vertices_per_graph, 45.0);
  EXPECT_NEAR(s.avg_degree_per_graph, 2.09, 0.1);
  for (const Graph& g : db.graphs()) {
    EXPECT_TRUE(IsConnected(g));
    EXPECT_FALSE(IsAcyclic(g));  // every molecule has rings at this degree
  }
}

}  // namespace
}  // namespace sgq
