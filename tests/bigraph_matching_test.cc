#include "matching/bigraph_matching.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "util/rng.h"

namespace sgq {
namespace {

// Exponential-time reference: maximum matching by trying all assignments of
// left vertices to distinct right vertices.
uint32_t BruteForceMatching(const BigraphAdjacency& adj, uint32_t num_right) {
  const uint32_t num_left = static_cast<uint32_t>(adj.size());
  uint32_t best = 0;
  std::vector<bool> used(num_right, false);
  // Recursive lambda over left index.
  std::function<void(uint32_t, uint32_t)> go = [&](uint32_t l,
                                                   uint32_t matched) {
    best = std::max(best, matched);
    if (l == num_left) return;
    go(l + 1, matched);  // leave l unmatched
    for (uint32_t r : adj[l]) {
      if (!used[r]) {
        used[r] = true;
        go(l + 1, matched + 1);
        used[r] = false;
      }
    }
  };
  go(0, 0);
  return best;
}

TEST(BigraphMatchingTest, EmptyGraph) {
  EXPECT_EQ(MaxBipartiteMatching({}, 0), 0u);
  EXPECT_TRUE(HasSemiPerfectMatching({}, 0));
}

TEST(BigraphMatchingTest, PerfectMatchingExists) {
  // 0-{0,1}, 1-{0}: match 1->0, 0->1.
  BigraphAdjacency adj = {{0, 1}, {0}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 2), 2u);
  EXPECT_TRUE(HasSemiPerfectMatching(adj, 2));
}

TEST(BigraphMatchingTest, NeedsAugmentingPath) {
  // Greedy matches 0->0; augmenting path needed for 1 and 2.
  BigraphAdjacency adj = {{0, 1}, {0}, {1, 2}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 3), 3u);
  EXPECT_TRUE(HasSemiPerfectMatching(adj, 3));
}

TEST(BigraphMatchingTest, NoSemiPerfectWhenLeftVertexIsolated) {
  BigraphAdjacency adj = {{0}, {}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 1), 1u);
  EXPECT_FALSE(HasSemiPerfectMatching(adj, 1));
}

TEST(BigraphMatchingTest, BottleneckRightVertex) {
  // Three left vertices all compete for one right vertex.
  BigraphAdjacency adj = {{0}, {0}, {0}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 1), 1u);
  EXPECT_FALSE(HasSemiPerfectMatching(adj, 1));
}

TEST(BigraphMatchingTest, HopcroftKarpAgrees) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t num_left = 1 + static_cast<uint32_t>(rng.NextBounded(7));
    const uint32_t num_right = 1 + static_cast<uint32_t>(rng.NextBounded(7));
    BigraphAdjacency adj(num_left);
    for (uint32_t l = 0; l < num_left; ++l) {
      for (uint32_t r = 0; r < num_right; ++r) {
        if (rng.NextBool(0.35)) adj[l].push_back(r);
      }
    }
    EXPECT_EQ(MaxBipartiteMatchingHopcroftKarp(adj, num_right),
              MaxBipartiteMatching(adj, num_right))
        << "trial " << trial;
  }
  EXPECT_EQ(MaxBipartiteMatchingHopcroftKarp({}, 0), 0u);
}

TEST(BigraphMatchingTest, RandomizedAgainstBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t num_left = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    const uint32_t num_right = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    BigraphAdjacency adj(num_left);
    for (uint32_t l = 0; l < num_left; ++l) {
      for (uint32_t r = 0; r < num_right; ++r) {
        if (rng.NextBool(0.4)) adj[l].push_back(r);
      }
    }
    const uint32_t expected = BruteForceMatching(adj, num_right);
    EXPECT_EQ(MaxBipartiteMatching(adj, num_right), expected)
        << "trial " << trial;
    EXPECT_EQ(HasSemiPerfectMatching(adj, num_right), expected == num_left)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace sgq
