// Incremental index maintenance: after arbitrary interleavings of database
// Add/Remove mirrored into the index via AppendGraph/OnSwapRemove, every
// IFV index must keep the no-false-drop invariant and the IFV engines must
// agree with an index-free engine on the same (mutated) database — without
// any rebuild.
#include <gtest/gtest.h>

#include <memory>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "index/ct_index.h"
#include "index/ggsx_index.h"
#include "index/graphgrep_index.h"
#include "index/grapes_index.h"
#include "matching/brute_force.h"
#include "query/engine_factory.h"
#include "query/ifv_engine.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sgq {
namespace {

std::unique_ptr<GraphIndex> MakeIndex(const std::string& name) {
  if (name == "Grapes") return std::make_unique<GrapesIndex>();
  if (name == "GGSX") return std::make_unique<GgsxIndex>();
  if (name == "CT-Index") return std::make_unique<CtIndex>();
  if (name == "GraphGrep") return std::make_unique<GraphGrepIndex>();
  SGQ_LOG(Fatal) << "unknown index " << name;
  return nullptr;
}

GraphDatabase MakeDb(uint64_t seed, uint32_t graphs) {
  SyntheticParams params;
  params.num_graphs = graphs;
  params.vertices_per_graph = 16;
  params.degree = 2.5;
  params.num_labels = 3;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

class IndexUpdateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IndexUpdateTest, AppendOnlyMatchesFreshBuild) {
  // Build over the first half, append the second half one by one; the
  // filter must behave exactly like a fresh build over everything.
  GraphDatabase db = MakeDb(1, 20);
  GraphDatabase half;
  for (GraphId g = 0; g < 10; ++g) half.Add(db.graph(g));

  auto incremental = MakeIndex(GetParam());
  ASSERT_TRUE(incremental->Build(half, Deadline::Infinite()));
  for (GraphId g = 10; g < 20; ++g) {
    ASSERT_TRUE(
        incremental->AppendGraph(db.graph(g), Deadline::Infinite()));
  }
  auto fresh = MakeIndex(GetParam());
  ASSERT_TRUE(fresh->Build(db, Deadline::Infinite()));

  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 4, &rng, &q)) continue;
    EXPECT_EQ(incremental->FilterCandidates(q), fresh->FilterCandidates(q))
        << GetParam() << " trial " << trial;
  }
}

TEST_P(IndexUpdateTest, RandomInterleavingKeepsNoFalseDrops) {
  GraphDatabase db = MakeDb(3, 15);
  auto index = MakeIndex(GetParam());
  ASSERT_TRUE(index->Build(db, Deadline::Infinite()));

  Rng rng(4);
  std::vector<Label> labels = {0, 1, 2};
  for (int step = 0; step < 60; ++step) {
    if (rng.NextBool(0.45) && db.size() > 2) {
      const GraphId victim =
          static_cast<GraphId>(rng.NextBounded(db.size()));
      ASSERT_TRUE(db.Remove(victim));
      index->OnSwapRemove(victim);
    } else {
      const GraphId id = db.Add(GenerateRandomGraph(
          14 + static_cast<uint32_t>(rng.NextBounded(6)), 2.5, labels,
          &rng));
      ASSERT_TRUE(
          index->AppendGraph(db.graph(id), Deadline::Infinite()));
    }
    ASSERT_EQ(index->NumLogicalGraphs(), db.size());

    if (step % 10 != 9) continue;  // validate every 10 steps
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 4, &rng, &q)) continue;
    const auto candidates = index->FilterCandidates(q);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    for (GraphId g : candidates) EXPECT_LT(g, db.size());
    for (GraphId g = 0; g < db.size(); ++g) {
      if (BruteForceContains(q, db.graph(g))) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       g))
            << GetParam() << " dropped " << g << " at step " << step;
      }
    }
  }
}

TEST_P(IndexUpdateTest, SaveRefusedAfterRemovals) {
  GraphDatabase db = MakeDb(5, 8);
  auto index = MakeIndex(GetParam());
  ASSERT_TRUE(index->Build(db, Deadline::Infinite()));
  db.Remove(2);
  index->OnSwapRemove(2);
  std::stringstream buffer;
  EXPECT_FALSE(index->SaveTo(buffer));
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexUpdateTest,
                         ::testing::Values("Grapes", "GGSX", "CT-Index", "GraphGrep"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(EngineUpdateConsistencyTest, IfvEngineTracksDatabaseWithoutRebuild) {
  GraphDatabase db = MakeDb(7, 20);
  IfvEngine grapes("Grapes", std::make_unique<GrapesIndex>());
  ASSERT_TRUE(grapes.Prepare(db, Deadline::Infinite()));
  auto cfql = MakeEngine("CFQL");
  ASSERT_TRUE(cfql->Prepare(db, Deadline::Infinite()));

  Rng rng(8);
  std::vector<Label> labels = {0, 1, 2};
  for (int step = 0; step < 40; ++step) {
    if (rng.NextBool(0.4) && db.size() > 2) {
      const GraphId victim =
          static_cast<GraphId>(rng.NextBounded(db.size()));
      ASSERT_TRUE(db.Remove(victim));
      grapes.NotifyRemoved(victim);
    } else {
      const GraphId id = db.Add(GenerateRandomGraph(15, 2.5, labels, &rng));
      ASSERT_TRUE(grapes.NotifyAdded(id));
    }
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 4, &rng, &q)) continue;
    EXPECT_EQ(grapes.Query(q, Deadline::Infinite()).answers,
              cfql->Query(q).answers)
        << "step " << step;
  }
}

}  // namespace
}  // namespace sgq
