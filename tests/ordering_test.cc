// Matching-order properties: JoinBasedOrder produces a connected
// permutation starting at the rarest vertex; the shared backtracker honors
// limits and deadlines.
#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "graph/graph_utils.h"
#include "matching/graphql.h"
#include "matching/matcher.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

CandidateSets UniformPhi(const Graph& q, uint32_t size) {
  CandidateSets phi(q.NumVertices());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId v = 0; v < size; ++v) phi.mutable_set(u).push_back(v);
  }
  return phi;
}

TEST(JoinBasedOrderTest, IsConnectedPermutation) {
  Rng rng(31);
  std::vector<Label> labels = {0, 1};
  for (int trial = 0; trial < 50; ++trial) {
    const Graph q = GenerateRandomGraph(
        2 + rng.NextBounded(8), 1.2 + rng.NextDouble() * 2, labels, &rng);
    if (!IsConnected(q)) continue;
    const CandidateSets phi = UniformPhi(q, 5);
    const auto order = JoinBasedOrder(q, phi);
    ASSERT_EQ(order.size(), q.NumVertices());
    std::vector<bool> seen(q.NumVertices(), false);
    seen[order[0]] = true;
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_FALSE(seen[order[i]]) << "duplicate in order";
      bool connected = false;
      for (VertexId w : q.Neighbors(order[i])) connected |= seen[w];
      EXPECT_TRUE(connected) << "prefix disconnected at step " << i;
      seen[order[i]] = true;
    }
  }
}

TEST(JoinBasedOrderTest, StartsAtFewestCandidates) {
  const Graph q = MakePath({0, 1, 2});
  CandidateSets phi(3);
  phi.mutable_set(0) = {0, 1, 2};
  phi.mutable_set(1) = {0, 1};
  phi.mutable_set(2) = {0};
  const auto order = JoinBasedOrder(q, phi);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);  // only frontier neighbor
  EXPECT_EQ(order[2], 0u);
}

TEST(JoinBasedOrderTest, PrefersCheapFrontier) {
  // Star center 0 with leaves 1..3; leaf 2 has the smallest candidate set
  // but the order must still start with the global minimum.
  const Graph q = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  CandidateSets phi(4);
  phi.mutable_set(0) = {0, 1};
  phi.mutable_set(1) = {0, 1, 2};
  phi.mutable_set(2) = {0};
  phi.mutable_set(3) = {0, 1, 2, 3};
  const auto order = JoinBasedOrder(q, phi);
  EXPECT_EQ(order[0], 2u);   // global min
  EXPECT_EQ(order[1], 0u);   // only neighbor of 2
  EXPECT_EQ(order[2], 1u);   // cheaper frontier than 3
  EXPECT_EQ(order[3], 3u);
}

TEST(BacktrackTest, ZeroLimitShortCircuits) {
  const Graph q = MakePath({0, 0});
  const Graph g = MakeCycle({0, 0, 0});
  CandidateSets phi(2);
  phi.mutable_set(0) = {0, 1, 2};
  phi.mutable_set(1) = {0, 1, 2};
  const auto r = BacktrackOverCandidates(q, g, phi, {0, 1}, 0, nullptr,
                                         nullptr);
  EXPECT_EQ(r.embeddings, 0u);
  EXPECT_EQ(r.recursion_calls, 0u);
}

TEST(BacktrackTest, CountsRecursionCalls) {
  const Graph q = MakePath({0, 0});
  const Graph g = MakeCycle({0, 0, 0});
  CandidateSets phi(2);
  phi.mutable_set(0) = {0, 1, 2};
  phi.mutable_set(1) = {0, 1, 2};
  const auto r = BacktrackOverCandidates(q, g, phi, {0, 1}, UINT64_MAX,
                                         nullptr, nullptr);
  EXPECT_EQ(r.embeddings, 6u);
  EXPECT_GT(r.recursion_calls, 6u);
  EXPECT_FALSE(r.aborted);
}

TEST(BacktrackTest, RespectsInjectivity) {
  // Query = 2 adjacent same-label vertices; data = single vertex with a
  // self-loop is impossible here, so use a single edge: exactly 2 ordered
  // embeddings, never mapping both query vertices to one data vertex.
  const Graph q = MakePath({0, 0});
  const Graph g = MakePath({0, 0});
  CandidateSets phi(2);
  phi.mutable_set(0) = {0, 1};
  phi.mutable_set(1) = {0, 1};
  uint64_t count = 0;
  BacktrackOverCandidates(q, g, phi, {0, 1}, UINT64_MAX, nullptr,
                          [&](const std::vector<VertexId>& m) {
                            ++count;
                            EXPECT_NE(m[0], m[1]);
                            return true;
                          });
  EXPECT_EQ(count, 2u);
}

TEST(BacktrackTest, DeadlineAborts) {
  // An already-expired deadline must abort the search partway through. The
  // checker polls real time only every 1024 ticks (one tick per recursion
  // call), so the instance must deterministically visit more than 1024
  // search nodes: this one visits 3191 with either extension path.
  Rng rng(3);
  std::vector<Label> labels = {0};
  const Graph q = GenerateRandomGraph(12, 8.0, labels, &rng);
  const Graph g = GenerateRandomGraph(200, 10.0, labels, &rng);
  CandidateSets phi(q.NumVertices());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      phi.mutable_set(u).push_back(v);
    }
  }
  const BfsTree tree = BuildBfsTree(q, 0);
  DeadlineChecker expired{Deadline::AfterSeconds(0)};
  const auto r = BacktrackOverCandidates(q, g, phi, tree.order, UINT64_MAX,
                                         &expired, nullptr);
  EXPECT_TRUE(r.aborted);
}

TEST(GraphQlRefinementTest, RoundsOnlyShrinkPhi) {
  Rng rng(41);
  std::vector<Label> labels = {0, 1};
  GraphQlMatcher r0{GraphQlOptions{.refinement_rounds = 0}};
  GraphQlMatcher r2{GraphQlOptions{.refinement_rounds = 2}};
  for (int trial = 0; trial < 40; ++trial) {
    const Graph q = GenerateRandomGraph(4, 1.5, labels, &rng);
    if (!IsConnected(q)) continue;
    const Graph g = GenerateRandomGraph(25, 3.0, labels, &rng);
    const auto phi0 = r0.Filter(q, g);
    const auto phi2 = r2.Filter(q, g);
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      EXPECT_LE(phi2->phi.set(u).size(), phi0->phi.set(u).size());
      for (VertexId v : phi2->phi.set(u)) {
        EXPECT_TRUE(phi0->phi.Contains(u, v));
      }
    }
  }
}

}  // namespace
}  // namespace sgq
