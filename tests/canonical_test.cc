// Canonicalization property tests: isomorphic relabelings must hash
// identically, non-isomorphic near-misses (same degree sequence, same
// label multiset) must hash differently, and the form must be
// deterministic — including when the tiebreak search budget is exhausted.
#include "cache/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using sgq::testing::MakeCycle;
using sgq::testing::MakeGraph;
using sgq::testing::MakePath;

// Rebuilds `graph` with old vertex i placed at position pos[i]; the result
// is isomorphic to the input by construction.
Graph Relabel(const Graph& graph, const std::vector<VertexId>& pos) {
  const uint32_t n = graph.NumVertices();
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[pos[v]] = graph.label(v);
  GraphBuilder builder;
  for (VertexId v = 0; v < n; ++v) builder.AddVertex(labels[v]);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (u < v) builder.AddEdge(pos[u], pos[v]);
    }
  }
  return builder.Build();
}

GraphDatabase TestDb() {
  SyntheticParams params;
  params.num_graphs = 12;
  params.vertices_per_graph = 24;
  params.degree = 3.5;
  params.num_labels = 5;
  params.seed = 42;
  return GenerateSyntheticDatabase(params);
}

TEST(CanonicalTest, DeterministicAcrossCalls) {
  const Graph g = MakeCycle({0, 1, 2, 0, 1, 2});
  const CanonicalForm a = Canonicalize(g);
  const CanonicalForm b = Canonicalize(g);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.encoding, b.encoding);
  EXPECT_TRUE(a.exact);
}

TEST(CanonicalTest, RandomRelabelingsHashIdentically) {
  // Property test over realistic query shapes: every random relabeling of
  // a query must produce the same canonical hash *and* encoding.
  const GraphDatabase db = TestDb();
  std::mt19937_64 rng(2026);
  for (const QueryKind kind : {QueryKind::kSparse, QueryKind::kDense}) {
    const QuerySet set = GenerateQuerySet(db, kind, /*num_edges=*/8,
                                          /*count=*/10, /*seed=*/5);
    for (const Graph& query : set.queries) {
      const CanonicalForm reference = Canonicalize(query);
      std::vector<VertexId> pos(query.NumVertices());
      std::iota(pos.begin(), pos.end(), 0);
      for (int trial = 0; trial < 8; ++trial) {
        std::shuffle(pos.begin(), pos.end(), rng);
        const CanonicalForm relabeled = Canonicalize(Relabel(query, pos));
        EXPECT_EQ(relabeled.hash, reference.hash);
        EXPECT_EQ(relabeled.encoding, reference.encoding);
      }
    }
  }
}

TEST(CanonicalTest, RegularNearMissPairHashesDifferently) {
  // K_{3,3} and the triangular prism: both 3-regular on 6 vertices with
  // one label, so degree sequences and label multisets agree; refinement
  // alone cannot split either graph and the tiebreak search must find the
  // structural difference (the prism has triangles).
  GraphBuilder k33;
  for (int i = 0; i < 6; ++i) k33.AddVertex(0);
  for (VertexId i = 0; i < 3; ++i) {
    for (VertexId j = 3; j < 6; ++j) k33.AddEdge(i, j);
  }
  const Graph prism = MakeGraph({0, 0, 0, 0, 0, 0},
                                {{0, 1}, {1, 2}, {2, 0},    // top triangle
                                 {3, 4}, {4, 5}, {5, 3},    // bottom triangle
                                 {0, 3}, {1, 4}, {2, 5}});  // struts
  const CanonicalForm a = Canonicalize(k33.Build());
  const CanonicalForm b = Canonicalize(prism);
  EXPECT_TRUE(a.exact);
  EXPECT_TRUE(b.exact);
  EXPECT_NE(a.hash, b.hash);
  EXPECT_NE(a.encoding, b.encoding);
}

TEST(CanonicalTest, SpiderTreeNearMissPairHashesDifferently) {
  // Two 6-vertex trees with degree sequence (3,2,1,1,1,1): a center with
  // legs of lengths (1,1,3) vs (1,2,2). Same label multiset, same degree
  // sequence, not isomorphic.
  const Graph spider113 = MakeGraph(
      {0, 0, 0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}});
  const Graph spider122 = MakeGraph(
      {0, 0, 0, 0, 0, 0}, {{0, 1}, {0, 2}, {2, 3}, {0, 4}, {4, 5}});
  EXPECT_NE(Canonicalize(spider113).hash, Canonicalize(spider122).hash);
}

TEST(CanonicalTest, LabeledCycleNearMissPairHashesDifferently) {
  // C4 with labels (0,0,1,1) around the cycle vs (0,1,0,1): identical
  // structure and label multiset, different label placement.
  EXPECT_NE(Canonicalize(MakeCycle({0, 0, 1, 1})).hash,
            Canonicalize(MakeCycle({0, 1, 0, 1})).hash);
}

TEST(CanonicalTest, LabelsDistinguishIdenticalStructure) {
  EXPECT_NE(Canonicalize(MakePath({0, 0, 0})).hash,
            Canonicalize(MakePath({0, 1, 0})).hash);
}

TEST(CanonicalTest, IsomorphicCyclesWithRotatedLabelsHashIdentically) {
  // Rotating the labels around a cycle is a relabeling of the same graph.
  EXPECT_EQ(Canonicalize(MakeCycle({0, 1, 2, 3})).hash,
            Canonicalize(MakeCycle({1, 2, 3, 0})).hash);
}

TEST(CanonicalTest, ExhaustedBudgetIsInexactButDeterministic) {
  // A single-label K_{4,4} keeps refinement from splitting anything, so a
  // budget of 1 node exhausts immediately; the greedy fallback must report
  // exact == false yet stay deterministic for the *same* input.
  GraphBuilder k44;
  for (int i = 0; i < 8; ++i) k44.AddVertex(0);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = 4; j < 8; ++j) k44.AddEdge(i, j);
  }
  const Graph g = k44.Build();
  const CanonicalForm a = Canonicalize(g, /*search_budget=*/1);
  const CanonicalForm b = Canonicalize(g, /*search_budget=*/1);
  EXPECT_FALSE(a.exact);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.encoding, b.encoding);
  // With the default budget the same graph is canonicalized exactly.
  EXPECT_TRUE(Canonicalize(g).exact);
}

TEST(CanonicalTest, RefinementAloneHandlesLabeledQueries) {
  // A typical labeled query needs no (or almost no) tiebreak search:
  // refinement splits everything and the form is exact.
  const GraphDatabase db = TestDb();
  const QuerySet set =
      GenerateQuerySet(db, QueryKind::kSparse, 6, 5, /*seed=*/11);
  for (const Graph& query : set.queries) {
    const CanonicalForm form = Canonicalize(query);
    EXPECT_TRUE(form.exact);
    EXPECT_GE(form.refinement_rounds, 1u);
  }
}

TEST(CanonicalTest, EncodingIsCompleteOnSmallGraphCatalog) {
  // Sanity for the soundness argument (equal encodings => isomorphic):
  // across a catalog of pairwise non-isomorphic small graphs, all
  // encodings and hashes are distinct.
  std::vector<Graph> catalog;
  catalog.push_back(MakePath({0, 0, 0, 0}));
  catalog.push_back(MakeCycle({0, 0, 0, 0}));
  catalog.push_back(MakeCycle({0, 0, 0, 0, 0}));
  catalog.push_back(MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}}));
  catalog.push_back(
      MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}));
  catalog.push_back(MakeGraph(
      {0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}));
  catalog.push_back(MakePath({0, 1, 0, 0}));
  catalog.push_back(MakePath({1, 0, 0, 0}));
  for (size_t i = 0; i < catalog.size(); ++i) {
    for (size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_NE(Canonicalize(catalog[i]).encoding,
                Canonicalize(catalog[j]).encoding)
          << "catalog graphs " << i << " and " << j;
      EXPECT_NE(Canonicalize(catalog[i]).hash, Canonicalize(catalog[j]).hash);
    }
  }
}

}  // namespace
}  // namespace sgq
