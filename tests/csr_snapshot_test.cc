// Tests for the binary mmap CSR snapshot format (graph/csr_snapshot.h):
// golden header bytes, round-trip equality, rejection of corrupt /
// truncated / mismatched files, and zero-copy view semantics.
#include "graph/csr_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gen/biggraph_gen.h"
#include "gen/graph_gen.h"
#include "graph/graph_io.h"

namespace sgq {
namespace {

// Unique-ish temp path per test; files are small and /tmp is disposable.
std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "csr_snapshot_" + tag + ".bin";
}

GraphDatabase SmallDatabase() {
  SyntheticParams params;
  params.num_graphs = 7;
  params.vertices_per_graph = 40;
  params.degree = 4.0;
  params.num_labels = 6;
  params.seed = 42;
  return GenerateSyntheticDatabase(params);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(CsrSnapshotTest, GoldenHeaderBytes) {
  const std::string path = TempPath("golden");
  GraphDatabase db;
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddEdge(0, 1);
  db.Add(b.Build());
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;

  const std::string bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 64u);
  // Magic: "SGQCSR1\n" at offset 0.
  EXPECT_EQ(0, std::memcmp(bytes.data(), "SGQCSR1\n", 8));
  // Version 1 (u32 LE) at offset 8.
  EXPECT_EQ(1, bytes[8]);
  EXPECT_EQ(0, bytes[9]);
  EXPECT_EQ(0, bytes[10]);
  EXPECT_EQ(0, bytes[11]);
  // Endian tag 0x01020304 written in host order: on the little-endian hosts
  // the format supports, byte 12 is 0x04.
  EXPECT_EQ(0x04, bytes[12]);
  EXPECT_EQ(0x03, bytes[13]);
  EXPECT_EQ(0x02, bytes[14]);
  EXPECT_EQ(0x01, bytes[15]);
  // Graph count (u64 LE) at offset 16.
  EXPECT_EQ(1, bytes[16]);
  EXPECT_EQ(0, bytes[17]);
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, RoundTripEquality) {
  const std::string path = TempPath("roundtrip");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;

  GraphDatabase loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error, /*verify_checksum=*/true))
      << error;
  EXPECT_TRUE(DatabasesEqual(db, loaded));
  ASSERT_EQ(db.size(), loaded.size());
  for (GraphId i = 0; i < loaded.size(); ++i) {
    EXPECT_FALSE(db.graph(i).IsMapped());
    EXPECT_TRUE(loaded.graph(i).IsMapped());
  }
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, AutoDetectedByLoadDatabase) {
  const std::string path = TempPath("autodetect");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  EXPECT_TRUE(IsSnapshotFile(path));

  GraphDatabase loaded;
  ASSERT_TRUE(LoadDatabase(path, &loaded, &error)) << error;
  EXPECT_TRUE(DatabasesEqual(db, loaded));
  EXPECT_TRUE(loaded.graph(0).IsMapped());
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, EmptyAndDegenerateGraphs) {
  const std::string path = TempPath("degenerate");
  GraphDatabase db;
  db.Add(Graph());  // never-built empty graph
  GraphBuilder lone;
  lone.AddVertex(3);
  db.Add(lone.Build());  // one vertex, no edges
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  GraphDatabase loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error, /*verify_checksum=*/true))
      << error;
  EXPECT_TRUE(DatabasesEqual(db, loaded));
  EXPECT_EQ(0u, loaded.graph(0).NumVertices());
  EXPECT_EQ(1u, loaded.graph(1).NumVertices());
  EXPECT_EQ(3u, loaded.graph(1).label(0));
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  std::string bytes = ReadFile(path);
  bytes[0] = 'X';
  WriteFile(path, bytes);
  EXPECT_FALSE(IsSnapshotFile(path));
  GraphDatabase loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, RejectsVersionMismatch) {
  const std::string path = TempPath("badversion");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  std::string bytes = ReadFile(path);
  bytes[8] = 99;  // version field
  WriteFile(path, bytes);
  GraphDatabase loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, RejectsEndianMismatch) {
  const std::string path = TempPath("badendian");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  std::string bytes = ReadFile(path);
  // Byte-swap the endian tag: what a big-endian writer would have produced.
  std::swap(bytes[12], bytes[15]);
  std::swap(bytes[13], bytes[14]);
  WriteFile(path, bytes);
  GraphDatabase loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("endian"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, RejectsTruncation) {
  const std::string path = TempPath("truncated");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  std::string bytes = ReadFile(path);
  // Structural load (no checksum) already catches truncation through the
  // exact-file-size check.
  WriteFile(path, bytes.substr(0, bytes.size() - 16));
  GraphDatabase loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, ChecksumCatchesPayloadCorruption) {
  const std::string path = TempPath("corrupt");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  std::string bytes = ReadFile(path);
  // Flip one payload byte near the end: structurally plausible, so only the
  // checksum can catch it.
  bytes[bytes.size() - 1] ^= 0x40;
  WriteFile(path, bytes);
  EXPECT_FALSE(VerifySnapshot(path, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  GraphDatabase loaded;
  EXPECT_FALSE(
      LoadSnapshot(path, &loaded, &error, /*verify_checksum=*/true));
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, VerifySnapshotAcceptsIntactFile) {
  const std::string path = TempPath("verifyok");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  EXPECT_TRUE(VerifySnapshot(path, &error)) << error;
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, ReadSnapshotInfo) {
  const std::string path = TempPath("info");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  SnapshotInfo info;
  ASSERT_TRUE(ReadSnapshotInfo(path, &info, &error)) << error;
  EXPECT_EQ(kSnapshotVersion, info.version);
  EXPECT_EQ(db.size(), info.num_graphs);
  uint64_t vertices = 0, edges = 0;
  for (GraphId i = 0; i < db.size(); ++i) {
    vertices += db.graph(i).NumVertices();
    edges += db.graph(i).NumEdges();
  }
  EXPECT_EQ(vertices, info.total_vertices);
  EXPECT_EQ(edges, info.total_edges);
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, MappedGraphCopiesShareTheMapping) {
  const std::string path = TempPath("copies");
  const GraphDatabase db = SmallDatabase();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  GraphDatabase loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;

  // A copy of a mapped graph stays a view (no materialization) and keeps
  // the mapping alive even after the database that loaded it is gone.
  Graph copy = loaded.graph(0);
  EXPECT_TRUE(copy.IsMapped());
  const Graph original = loaded.graph(0);
  loaded = GraphDatabase();
  std::remove(path.c_str());  // mapping survives unlink
  EXPECT_TRUE(GraphsEqual(copy, original));
  EXPECT_GT(copy.NumVertices(), 0u);
}

TEST(CsrSnapshotTest, MappedGraphMemoryBytesCountsViewedArrays) {
  const std::string path = TempPath("membytes");
  GraphDatabase db;
  db.Add(GeneratePowerLawGraph({.num_vertices = 2048,
                                .avg_degree = 8.0,
                                .num_labels = 8,
                                .label_skew = 1.0,
                                .seed = 3}));
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  GraphDatabase loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  // Same arrays, so the mapped footprint matches the owned footprint's
  // element bytes (owned counts capacities, which Build keeps tight).
  EXPECT_GT(loaded.graph(0).MemoryBytes(), 0u);
  EXPECT_LE(loaded.graph(0).MemoryBytes(), db.graph(0).MemoryBytes());
  std::remove(path.c_str());
}

TEST(CsrSnapshotTest, PowerLawRoundTrip) {
  const std::string path = TempPath("powerlaw");
  PowerLawParams params;
  params.num_vertices = 5000;
  params.avg_degree = 12.0;
  params.num_labels = 16;
  params.seed = 11;
  GraphDatabase db;
  db.Add(GeneratePowerLawGraph(params));
  std::string error;
  ASSERT_TRUE(WriteSnapshot(db, path, &error)) << error;
  GraphDatabase loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error, /*verify_checksum=*/true))
      << error;
  EXPECT_TRUE(DatabasesEqual(db, loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgq
