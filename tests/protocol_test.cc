// Unit tests for the wire-protocol codec: request grammar, incremental
// (byte-at-a-time) feeding, length-prefixed payload handling, and the
// error paths a hostile or broken client can hit — malformed verbs,
// truncated payloads, oversized requests, over-long command lines.
#include "service/protocol.h"

#include <gtest/gtest.h>

#include "query/stats.h"

namespace sgq {
namespace {

using Status = RequestParser::Status;

TEST(ProtocolTest, ParsesSimpleVerbs) {
  RequestParser parser;
  parser.Feed("STATS\nSHUTDOWN\nRELOAD\nRELOAD @/tmp/db.txt\nCACHE CLEAR\n");
  Request request;
  std::string error;

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kStats);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kShutdown);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kReload);
  EXPECT_TRUE(request.file_ref.empty());
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kReload);
  EXPECT_EQ(request.file_ref, "/tmp/db.txt");
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kCacheClear);
  EXPECT_EQ(parser.Next(&request, &error), Status::kNeedMore);
  EXPECT_FALSE(parser.HasPartial());
}

TEST(ProtocolTest, ParsesInlineQueryWithPayload) {
  const std::string payload = "t # 0\nv 0 1\nv 1 2\ne 0 1\n";
  RequestParser parser;
  parser.Feed("QUERY " + std::to_string(payload.size()) + " 2.5\n" + payload);
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.verb, Request::Verb::kQuery);
  EXPECT_EQ(request.graph_text, payload);
  EXPECT_DOUBLE_EQ(request.timeout_seconds, 2.5);
  EXPECT_TRUE(request.file_ref.empty());
}

TEST(ProtocolTest, PayloadBytesAreNotInterpretedAsCommands) {
  // A payload that looks like protocol must be passed through verbatim.
  const std::string payload = "SHUTDOWN\nSTATS\n";
  RequestParser parser;
  parser.Feed("QUERY " + std::to_string(payload.size()) + "\n" + payload +
              "STATS\n");
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kQuery);
  EXPECT_EQ(request.graph_text, payload);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kStats);
}

TEST(ProtocolTest, ByteAtATimeFeeding) {
  const std::string payload = "t # 0\nv 0 3\n";
  const std::string wire =
      "QUERY @/data/q7.txt 0.25\r\nQUERY " +
      std::to_string(payload.size()) + "\n" + payload + "STATS\n";
  RequestParser parser;
  std::vector<Request> requests;
  std::string error;
  for (const char c : wire) {
    parser.Feed(std::string_view(&c, 1));
    Request request;
    while (parser.Next(&request, &error) == Status::kReady) {
      requests.push_back(request);
    }
  }
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].verb, Request::Verb::kQuery);
  EXPECT_EQ(requests[0].file_ref, "/data/q7.txt");
  EXPECT_DOUBLE_EQ(requests[0].timeout_seconds, 0.25);
  EXPECT_EQ(requests[1].graph_text, payload);
  EXPECT_EQ(requests[2].verb, Request::Verb::kStats);
}

TEST(ProtocolTest, BlankLinesAreIgnored) {
  RequestParser parser;
  parser.Feed("\n\r\n  \nSTATS\n");
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kStats);
}

TEST(ProtocolTest, MalformedVerbIsAnError) {
  RequestParser parser;
  parser.Feed("FROBNICATE 12\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_NE(error.find("unknown verb"), std::string::npos);
  // The parser is dead after an error: resynchronization is impossible.
  parser.Feed("STATS\n");
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
}

TEST(ProtocolTest, BadArgumentsAreErrors) {
  const char* bad[] = {
      "QUERY\n",              // missing length
      "QUERY twelve\n",       // non-numeric length
      "QUERY -5\n",           // negative length
      "QUERY 5 1.5 extra\n",  // too many tokens
      "QUERY 5 -2\n",         // negative timeout
      "QUERY 5 abc\n",        // non-numeric timeout
      "QUERY @\n",            // empty path
      "STATS now\n",          // STATS takes no arguments
      "SHUTDOWN 1\n",         // SHUTDOWN takes no arguments
      "RELOAD db.txt\n",      // RELOAD path must be @-prefixed
      "RELOAD @a @b\n",       // too many tokens
      "CACHE\n",              // missing subcommand
      "CACHE FLUSH\n",        // unknown subcommand
      "CACHE CLEAR extra\n",  // too many tokens
      "CACHE clear\n",        // subcommands are case-sensitive
  };
  for (const char* line : bad) {
    SCOPED_TRACE(line);
    RequestParser parser;
    parser.Feed(line);
    Request request;
    std::string error;
    EXPECT_EQ(parser.Next(&request, &error), Status::kError);
    EXPECT_FALSE(error.empty());
  }
}

TEST(ProtocolTest, TruncatedPayloadReportsNeedMoreAndPartial) {
  RequestParser parser;
  parser.Feed("QUERY 100\nonly a few bytes");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kNeedMore);
  EXPECT_TRUE(parser.HasPartial());  // disconnect now = truncated request
  // The remaining bytes complete the request.
  parser.Feed(std::string(100 - 16, 'x'));
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.graph_text.size(), 100u);
}

TEST(ProtocolTest, OversizedPayloadIsRejectedUpFront) {
  RequestParser parser(/*max_payload_bytes=*/1024);
  parser.Feed("QUERY 1025\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos);

  RequestParser ok_parser(/*max_payload_bytes=*/1024);
  ok_parser.Feed("QUERY 1024\n" + std::string(1024, 'v'));
  EXPECT_EQ(ok_parser.Next(&request, &error), Status::kReady);
}

TEST(ProtocolTest, HugeLengthTokenDoesNotOverflow) {
  RequestParser parser;
  parser.Feed("QUERY 99999999999999999999999999\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
}

TEST(ProtocolTest, UnterminatedCommandLineIsBounded) {
  RequestParser parser;
  parser.Feed(std::string(kMaxCommandLineBytes + 1, 'A'));  // no newline
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_NE(error.find("command line exceeds"), std::string::npos);
}

TEST(ProtocolTest, QueryResponseFormatting) {
  QueryResult result;
  result.answers = {3, 7, 9};
  result.stats.num_answers = 3;
  result.stats.num_candidates = 5;
  const std::string ok = FormatQueryResponse(result);
  EXPECT_EQ(ok.rfind("OK 3 {", 0), 0u) << ok;
  EXPECT_EQ(ok.back(), '\n');
  EXPECT_NE(ok.find("\"num_candidates\":5"), std::string::npos);

  result.stats.timed_out = true;
  const std::string timeout = FormatQueryResponse(result);
  EXPECT_EQ(timeout.rfind("TIMEOUT 3 {", 0), 0u) << timeout;
}

TEST(ProtocolTest, ErrorResponsesAreSingleLine) {
  EXPECT_EQ(FormatOverloadedResponse(), "OVERLOADED\n");
  EXPECT_EQ(FormatOverloadedResponse("shutting-down"),
            "OVERLOADED shutting-down\n");
  EXPECT_EQ(FormatBadRequestResponse("bad\nthing"),
            "BAD_REQUEST bad thing\n");
}

}  // namespace
}  // namespace sgq
