// Unit tests for the wire-protocol codec: request grammar, incremental
// (byte-at-a-time) feeding, length-prefixed payload handling, and the
// error paths a hostile or broken client can hit — malformed verbs,
// truncated payloads, oversized requests, over-long command lines.
#include "service/protocol.h"

#include <gtest/gtest.h>

#include "query/stats.h"

namespace sgq {
namespace {

using Status = RequestParser::Status;

TEST(ProtocolTest, ParsesSimpleVerbs) {
  RequestParser parser;
  parser.Feed("STATS\nSHUTDOWN\nRELOAD\nRELOAD @/tmp/db.txt\nCACHE CLEAR\n");
  Request request;
  std::string error;

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kStats);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kShutdown);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kReload);
  EXPECT_TRUE(request.file_ref.empty());
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kReload);
  EXPECT_EQ(request.file_ref, "/tmp/db.txt");
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kCacheClear);
  EXPECT_EQ(parser.Next(&request, &error), Status::kNeedMore);
  EXPECT_FALSE(parser.HasPartial());
}

TEST(ProtocolTest, ParsesInlineQueryWithPayload) {
  const std::string payload = "t # 0\nv 0 1\nv 1 2\ne 0 1\n";
  RequestParser parser;
  parser.Feed("QUERY " + std::to_string(payload.size()) + " 2.5\n" + payload);
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.verb, Request::Verb::kQuery);
  EXPECT_EQ(request.graph_text, payload);
  EXPECT_DOUBLE_EQ(request.timeout_seconds, 2.5);
  EXPECT_TRUE(request.file_ref.empty());
}

TEST(ProtocolTest, PayloadBytesAreNotInterpretedAsCommands) {
  // A payload that looks like protocol must be passed through verbatim.
  const std::string payload = "SHUTDOWN\nSTATS\n";
  RequestParser parser;
  parser.Feed("QUERY " + std::to_string(payload.size()) + "\n" + payload +
              "STATS\n");
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kQuery);
  EXPECT_EQ(request.graph_text, payload);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kStats);
}

TEST(ProtocolTest, ByteAtATimeFeeding) {
  const std::string payload = "t # 0\nv 0 3\n";
  const std::string wire =
      "QUERY @/data/q7.txt 0.25\r\nQUERY " +
      std::to_string(payload.size()) + "\n" + payload + "STATS\n";
  RequestParser parser;
  std::vector<Request> requests;
  std::string error;
  for (const char c : wire) {
    parser.Feed(std::string_view(&c, 1));
    Request request;
    while (parser.Next(&request, &error) == Status::kReady) {
      requests.push_back(request);
    }
  }
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].verb, Request::Verb::kQuery);
  EXPECT_EQ(requests[0].file_ref, "/data/q7.txt");
  EXPECT_DOUBLE_EQ(requests[0].timeout_seconds, 0.25);
  EXPECT_EQ(requests[1].graph_text, payload);
  EXPECT_EQ(requests[2].verb, Request::Verb::kStats);
}

TEST(ProtocolTest, BlankLinesAreIgnored) {
  RequestParser parser;
  parser.Feed("\n\r\n  \nSTATS\n");
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.verb, Request::Verb::kStats);
}

TEST(ProtocolTest, MalformedVerbIsAnError) {
  RequestParser parser;
  parser.Feed("FROBNICATE 12\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_NE(error.find("unknown verb"), std::string::npos);
  // The parser is dead after an error: resynchronization is impossible.
  parser.Feed("STATS\n");
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
}

TEST(ProtocolTest, BadArgumentsAreErrors) {
  const char* bad[] = {
      "QUERY\n",              // missing length
      "QUERY twelve\n",       // non-numeric length
      "QUERY -5\n",           // negative length
      "QUERY 5 1.5 extra\n",  // too many tokens
      "QUERY 5 -2\n",         // negative timeout
      "QUERY 5 abc\n",        // non-numeric timeout
      "QUERY @\n",            // empty path
      "STATS now\n",          // STATS takes no arguments
      "SHUTDOWN 1\n",         // SHUTDOWN takes no arguments
      "RELOAD db.txt\n",      // RELOAD path must be @-prefixed
      "RELOAD @a @b\n",       // too many tokens
      "CACHE\n",              // missing subcommand
      "CACHE FLUSH\n",        // unknown subcommand
      "CACHE CLEAR extra\n",  // too many tokens
      "CACHE clear\n",        // subcommands are case-sensitive
  };
  for (const char* line : bad) {
    SCOPED_TRACE(line);
    RequestParser parser;
    parser.Feed(line);
    Request request;
    std::string error;
    EXPECT_EQ(parser.Next(&request, &error), Status::kError);
    EXPECT_FALSE(error.empty());
  }
}

TEST(ProtocolTest, TruncatedPayloadReportsNeedMoreAndPartial) {
  RequestParser parser;
  parser.Feed("QUERY 100\nonly a few bytes");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kNeedMore);
  EXPECT_TRUE(parser.HasPartial());  // disconnect now = truncated request
  // The remaining bytes complete the request.
  parser.Feed(std::string(100 - 16, 'x'));
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady);
  EXPECT_EQ(request.graph_text.size(), 100u);
}

TEST(ProtocolTest, OversizedPayloadIsRejectedUpFront) {
  RequestParser parser(/*max_payload_bytes=*/1024);
  parser.Feed("QUERY 1025\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos);

  RequestParser ok_parser(/*max_payload_bytes=*/1024);
  ok_parser.Feed("QUERY 1024\n" + std::string(1024, 'v'));
  EXPECT_EQ(ok_parser.Next(&request, &error), Status::kReady);
}

TEST(ProtocolTest, HugeLengthTokenDoesNotOverflow) {
  RequestParser parser;
  parser.Feed("QUERY 99999999999999999999999999\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
}

TEST(ProtocolTest, UnterminatedCommandLineIsBounded) {
  RequestParser parser;
  parser.Feed(std::string(kMaxCommandLineBytes + 1, 'A'));  // no newline
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_NE(error.find("command line exceeds"), std::string::npos);
}

TEST(ProtocolTest, QueryResponseFormatting) {
  QueryResult result;
  result.answers = {3, 7, 9};
  result.stats.num_answers = 3;
  result.stats.num_candidates = 5;
  const std::string ok = FormatQueryResponse(result);
  EXPECT_EQ(ok.rfind("OK 3 {", 0), 0u) << ok;
  EXPECT_EQ(ok.back(), '\n');
  EXPECT_NE(ok.find("\"num_candidates\":5"), std::string::npos);

  result.stats.timed_out = true;
  const std::string timeout = FormatQueryResponse(result);
  EXPECT_EQ(timeout.rfind("TIMEOUT 3 {", 0), 0u) << timeout;
}

TEST(ProtocolTest, ErrorResponsesAreSingleLine) {
  EXPECT_EQ(FormatOverloadedResponse(), "OVERLOADED\n");
  EXPECT_EQ(FormatOverloadedResponse("shutting-down"),
            "OVERLOADED shutting-down\n");
  EXPECT_EQ(FormatBadRequestResponse("bad\nthing"),
            "BAD_REQUEST bad thing\n");
}

// --- LIMIT / IDS grammar (the router's partial-result framing) ---

TEST(ProtocolTest, ParsesLimitAndIdsOptions) {
  RequestParser parser;
  parser.Feed(
      "QUERY 2 1.5 LIMIT 10 IDS\nxx"
      "QUERY 2 IDS LIMIT 3\nxx"
      "QUERY 2 LIMIT 7\nxx"
      "QUERY 2 IDS\nxx"
      "QUERY @/tmp/q.txt 0.5 LIMIT 2 IDS\n");
  Request request;
  std::string error;

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_DOUBLE_EQ(request.timeout_seconds, 1.5);
  EXPECT_EQ(request.limit, 10u);
  EXPECT_TRUE(request.want_ids);

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_DOUBLE_EQ(request.timeout_seconds, 0);  // options in either order
  EXPECT_EQ(request.limit, 3u);
  EXPECT_TRUE(request.want_ids);

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.limit, 7u);
  EXPECT_FALSE(request.want_ids);

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.limit, 0u);
  EXPECT_TRUE(request.want_ids);

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.file_ref, "/tmp/q.txt");
  EXPECT_DOUBLE_EQ(request.timeout_seconds, 0.5);
  EXPECT_EQ(request.limit, 2u);
  EXPECT_TRUE(request.want_ids);
}

TEST(ProtocolTest, LimitIdsGrammarErrors) {
  const char* bad[] = {
      "QUERY 5 LIMIT\n",            // missing count
      "QUERY 5 LIMIT 0\n",          // k must be >= 1
      "QUERY 5 LIMIT abc\n",        // non-numeric count
      "QUERY 5 LIMIT 2 LIMIT 3\n",  // duplicate LIMIT
      "QUERY 5 IDS IDS\n",          // duplicate IDS
      "QUERY 5 IDS 1.5\n",          // bare timeout must come first
      "QUERY 5 LIMIT 2 bogus\n",    // unknown option
  };
  for (const char* line : bad) {
    SCOPED_TRACE(line);
    RequestParser parser;
    parser.Feed(line);
    Request request;
    std::string error;
    EXPECT_EQ(parser.Next(&request, &error), Status::kError);
    EXPECT_FALSE(error.empty());
  }
}

TEST(ProtocolTest, IdsLineFormatting) {
  EXPECT_EQ(FormatIdsLine({}), "IDS\n");
  const GraphId ids[] = {0, 12, 345};
  EXPECT_EQ(FormatIdsLine(ids), "IDS 0 12 345\n");
}

TEST(ProtocolTest, QueryResponseWithShardsAndIds) {
  QueryResult result;
  result.answers = {4, 8};
  result.stats.num_answers = 2;
  const ShardHealth health{1, 2};
  const std::string response = FormatQueryResponse(result, &health, true);
  // One response line + one IDS line.
  const size_t newline = response.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string head = response.substr(0, newline);
  EXPECT_EQ(head.rfind("OK 2 {", 0), 0u) << head;
  EXPECT_NE(head.find("\"shards_ok\":1"), std::string::npos) << head;
  EXPECT_NE(head.find("\"shards_total\":2"), std::string::npos) << head;
  EXPECT_EQ(response.substr(newline + 1), "IDS 4 8\n");

  // The health fields must round-trip through the stats json.
  const ResponseHead parsed = ParseResponseHead(head);
  ShardHealth parsed_health;
  ASSERT_TRUE(ParseShardHealth(parsed.body, &parsed_health));
  EXPECT_EQ(parsed_health.ok, 1u);
  EXPECT_EQ(parsed_health.total, 2u);
  // A plain server's stats json has no shard fields.
  EXPECT_FALSE(
      ParseShardHealth(ToJson(QueryStats{}), &parsed_health));
}

TEST(ProtocolTest, ApplyAnswerLimitTruncates) {
  QueryResult result;
  result.answers = {1, 2, 3, 4, 5};
  result.stats.num_answers = 5;
  ApplyAnswerLimit(&result, 0);  // 0 = unlimited
  EXPECT_EQ(result.answers.size(), 5u);
  ApplyAnswerLimit(&result, 9);  // larger than the set
  EXPECT_EQ(result.answers.size(), 5u);
  ApplyAnswerLimit(&result, 2);
  EXPECT_EQ(result.answers, (std::vector<GraphId>{1, 2}));
  EXPECT_EQ(result.stats.num_answers, 2u);
}

TEST(ProtocolTest, ParseResponseHeadRecognizesEveryOutcome) {
  ResponseHead head = ParseResponseHead("OK 3 {\"num_answers\":3}");
  EXPECT_EQ(head.kind, ResponseHead::Kind::kOk);
  EXPECT_TRUE(head.has_count);
  EXPECT_EQ(head.num_answers, 3u);
  EXPECT_EQ(head.body, "{\"num_answers\":3}");

  head = ParseResponseHead("TIMEOUT 0 {}");
  EXPECT_EQ(head.kind, ResponseHead::Kind::kTimeout);
  EXPECT_TRUE(head.has_count);
  EXPECT_EQ(head.num_answers, 0u);

  head = ParseResponseHead("OK {\"received\":1}");  // STATS reply
  EXPECT_EQ(head.kind, ResponseHead::Kind::kOk);
  EXPECT_FALSE(head.has_count);
  EXPECT_EQ(head.body, "{\"received\":1}");

  head = ParseResponseHead("OK reloaded 30 graphs");
  EXPECT_EQ(head.kind, ResponseHead::Kind::kOk);
  EXPECT_FALSE(head.has_count);

  head = ParseResponseHead("OVERLOADED queue full");
  EXPECT_EQ(head.kind, ResponseHead::Kind::kOverloaded);
  EXPECT_EQ(head.body, "queue full");

  // An old server rejects the extended grammar with BAD_REQUEST and closes;
  // the router must see a clean, classifiable outcome, not a desync.
  head = ParseResponseHead("BAD_REQUEST too many QUERY arguments");
  EXPECT_EQ(head.kind, ResponseHead::Kind::kBadRequest);
  EXPECT_EQ(head.body, "too many QUERY arguments");

  EXPECT_EQ(ParseResponseHead("BYE").kind, ResponseHead::Kind::kBye);
  EXPECT_EQ(ParseResponseHead("BYE\r").kind, ResponseHead::Kind::kBye);
  EXPECT_EQ(ParseResponseHead("").kind, ResponseHead::Kind::kMalformed);
  EXPECT_EQ(ParseResponseHead("GARBAGE 1").kind,
            ResponseHead::Kind::kMalformed);
  EXPECT_EQ(ParseResponseHead("OK x {}").kind, ResponseHead::Kind::kOk);
  EXPECT_FALSE(ParseResponseHead("OK x {}").has_count);
}

TEST(ProtocolTest, ParseIdsLineChecksCount) {
  std::vector<GraphId> ids;
  EXPECT_TRUE(ParseIdsLine("IDS 1 5 9", 3, &ids));
  EXPECT_EQ(ids, (std::vector<GraphId>{1, 5, 9}));
  EXPECT_TRUE(ParseIdsLine("IDS", 0, &ids));
  EXPECT_TRUE(ids.empty());
  EXPECT_FALSE(ParseIdsLine("IDS 1 5", 3, &ids));     // too few
  EXPECT_FALSE(ParseIdsLine("IDS 1 5 9 11", 3, &ids));  // too many
  EXPECT_FALSE(ParseIdsLine("IDS 1 x 9", 3, &ids));   // non-numeric
  EXPECT_FALSE(ParseIdsLine("ANSWERS 1 5 9", 3, &ids));  // wrong tag
}

// --- STREAM grammar and incremental framing ---

TEST(ProtocolTest, ParsesStreamOption) {
  RequestParser parser;
  parser.Feed(
      "QUERY 2 STREAM\nxx"
      "QUERY 2 1.5 LIMIT 3 STREAM\nxx"
      "QUERY 2 STREAM IDS\nxx"
      "QUERY @/tmp/q.txt STREAM\n"
      "QUERY 2\nxx");
  Request request;
  std::string error;

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_TRUE(request.stream);
  EXPECT_EQ(request.limit, 0u);

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_TRUE(request.stream);
  EXPECT_EQ(request.limit, 3u);
  EXPECT_DOUBLE_EQ(request.timeout_seconds, 1.5);

  // STREAM composes with IDS (the batch trailer is suppressed at reply
  // time, but the grammar accepts both).
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_TRUE(request.stream);
  EXPECT_TRUE(request.want_ids);

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_TRUE(request.stream);
  EXPECT_EQ(request.file_ref, "/tmp/q.txt");

  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_FALSE(request.stream);  // default stays off
}

TEST(ProtocolTest, StreamGrammarErrors) {
  RequestParser parser;
  parser.Feed("QUERY 5 STREAM STREAM\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
  EXPECT_FALSE(error.empty());
}

TEST(ProtocolTest, OverloadedResponseCarriesRetryAfterHint) {
  EXPECT_EQ(FormatOverloadedResponse("", 250),
            "OVERLOADED retry_after_ms=250\n");
  EXPECT_EQ(FormatOverloadedResponse("queue full", 250),
            "OVERLOADED retry_after_ms=250 queue full\n");
  // A zero hint (no completed-query EWMA yet) keeps the legacy shape.
  EXPECT_EQ(FormatOverloadedResponse("queue full", 0),
            "OVERLOADED queue full\n");
  EXPECT_EQ(FormatOverloadedResponse("", 0), "OVERLOADED\n");
}

TEST(ProtocolTest, ParseRetryAfterMs) {
  uint64_t ms = 0;
  const ResponseHead head =
      ParseResponseHead("OVERLOADED retry_after_ms=120 queue full");
  ASSERT_TRUE(ParseRetryAfterMs(head.body, &ms));
  EXPECT_EQ(ms, 120u);
  EXPECT_FALSE(ParseRetryAfterMs("queue full", &ms));
  EXPECT_FALSE(ParseRetryAfterMs("", &ms));
  EXPECT_FALSE(ParseRetryAfterMs("retry_after_ms=abc", &ms));
}

TEST(ProtocolTest, ParseIdsChunkAppends) {
  std::vector<GraphId> ids;
  EXPECT_TRUE(ParseIdsChunk("IDS 1 5", &ids));
  EXPECT_TRUE(ParseIdsChunk("IDS 9", &ids));
  EXPECT_EQ(ids, (std::vector<GraphId>{1, 5, 9}));  // appends, no reset
  EXPECT_TRUE(ParseIdsChunk("IDS", &ids));  // empty chunk is legal
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_TRUE(ParseIdsChunk("IDS 11\r", &ids));  // CRLF tolerated
  EXPECT_EQ(ids.back(), 11u);
  EXPECT_FALSE(ParseIdsChunk("IDS 1 x", &ids));
  EXPECT_FALSE(ParseIdsChunk("ANSWERS 1", &ids));
  EXPECT_FALSE(ParseIdsChunk("", &ids));
}

TEST(ProtocolTest, QueryStatsJsonRoundTrips) {
  QueryStats stats;
  stats.filtering_ms = 1.25;
  stats.verification_ms = 0.5;
  stats.num_candidates = 42;
  stats.num_answers = 7;
  stats.si_tests = 40;
  stats.timed_out = true;
  stats.aux_memory_bytes = 4096;
  stats.ws_filter_hits = 3;
  stats.ws_filter_misses = 2;
  stats.intersect_calls = 11;
  stats.intersect_merge = 5;
  stats.intersect_gallop = 4;
  stats.intersect_simd = 2;
  stats.local_candidates = 99;
  stats.tasks_spawned = 8;
  stats.tasks_stolen = 6;
  stats.tasks_aborted = 1;

  QueryStats parsed;
  ASSERT_TRUE(ParseQueryStatsJson(ToJson(stats), &parsed));
  EXPECT_DOUBLE_EQ(parsed.filtering_ms, stats.filtering_ms);
  EXPECT_DOUBLE_EQ(parsed.verification_ms, stats.verification_ms);
  EXPECT_EQ(parsed.num_candidates, stats.num_candidates);
  EXPECT_EQ(parsed.num_answers, stats.num_answers);
  EXPECT_EQ(parsed.si_tests, stats.si_tests);
  EXPECT_EQ(parsed.timed_out, stats.timed_out);
  EXPECT_EQ(parsed.aux_memory_bytes, stats.aux_memory_bytes);
  EXPECT_EQ(parsed.ws_filter_hits, stats.ws_filter_hits);
  EXPECT_EQ(parsed.ws_filter_misses, stats.ws_filter_misses);
  EXPECT_EQ(parsed.intersect_calls, stats.intersect_calls);
  EXPECT_EQ(parsed.intersect_merge, stats.intersect_merge);
  EXPECT_EQ(parsed.intersect_gallop, stats.intersect_gallop);
  EXPECT_EQ(parsed.intersect_simd, stats.intersect_simd);
  EXPECT_EQ(parsed.local_candidates, stats.local_candidates);
  EXPECT_EQ(parsed.tasks_spawned, stats.tasks_spawned);
  EXPECT_EQ(parsed.tasks_stolen, stats.tasks_stolen);
  EXPECT_EQ(parsed.tasks_aborted, stats.tasks_aborted);

  EXPECT_FALSE(ParseQueryStatsJson("not json", &parsed));
  EXPECT_FALSE(ParseQueryStatsJson("", &parsed));
}

TEST(ProtocolTest, ParsesAddGraphWithInlinePayload) {
  const std::string payload = "t # 0\nv 0 1\nv 1 2\ne 0 1\n";
  RequestParser parser;
  parser.Feed("ADD GRAPH " + std::to_string(payload.size()) + "\n" + payload);
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.verb, Request::Verb::kAddGraph);
  EXPECT_EQ(request.graph_text, payload);
  EXPECT_FALSE(request.has_graph_id);
}

TEST(ProtocolTest, ParsesAddGraphWithForcedIdAndFileRef) {
  const std::string payload = "t # 0\nv 0 1\n";
  RequestParser parser;
  parser.Feed("ADD GRAPH " + std::to_string(payload.size()) + " ID 42\n" +
              payload + "ADD GRAPH @/tmp/g.txt ID 7\n");
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.verb, Request::Verb::kAddGraph);
  EXPECT_EQ(request.graph_text, payload);
  ASSERT_TRUE(request.has_graph_id);
  EXPECT_EQ(request.graph_id, 42u);
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.verb, Request::Verb::kAddGraph);
  EXPECT_EQ(request.file_ref, "/tmp/g.txt");
  ASSERT_TRUE(request.has_graph_id);
  EXPECT_EQ(request.graph_id, 7u);
}

TEST(ProtocolTest, ParsesRemoveGraph) {
  RequestParser parser;
  parser.Feed("REMOVE GRAPH 13\n");
  Request request;
  std::string error;
  ASSERT_EQ(parser.Next(&request, &error), Status::kReady) << error;
  EXPECT_EQ(request.verb, Request::Verb::kRemoveGraph);
  EXPECT_EQ(request.graph_id, 13u);
}

TEST(ProtocolTest, MutationGrammarErrors) {
  for (const char* line :
       {"ADD\n", "ADD GRAPH\n", "ADD GRAPH nonsense\n",
        "ADD GRAPH 4 ID\n", "ADD GRAPH 4 ID x\n", "ADD GRAPH 4 LIMIT 2\n",
        "REMOVE\n", "REMOVE GRAPH\n", "REMOVE GRAPH x\n",
        "REMOVE GRAPH 1 2\n"}) {
    RequestParser parser;
    parser.Feed(line);
    Request request;
    std::string error;
    EXPECT_EQ(parser.Next(&request, &error), Status::kError) << line;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ProtocolTest, OversizedAddPayloadIsRejectedUpFront) {
  RequestParser parser(/*max_payload_bytes=*/64);
  parser.Feed("ADD GRAPH 65\n");
  Request request;
  std::string error;
  EXPECT_EQ(parser.Next(&request, &error), Status::kError);
}

TEST(ProtocolTest, MutationResponseRoundTrip) {
  EXPECT_EQ(FormatAddedResponse(42), "OK added 42\n");
  EXPECT_EQ(FormatRemovedResponse(7), "OK removed 7\n");
  GraphId gid = 0;
  ASSERT_TRUE(ParseAddedResponse("OK added 42", &gid));
  EXPECT_EQ(gid, 42u);
  ASSERT_TRUE(ParseRemovedResponse("OK removed 7", &gid));
  EXPECT_EQ(gid, 7u);
  // Cross-talk and malformed lines are refused.
  EXPECT_FALSE(ParseAddedResponse("OK removed 7", &gid));
  EXPECT_FALSE(ParseRemovedResponse("OK added 42", &gid));
  EXPECT_FALSE(ParseAddedResponse("OK added", &gid));
  EXPECT_FALSE(ParseAddedResponse("OK added x", &gid));
  EXPECT_FALSE(ParseAddedResponse("OVERLOADED busy", &gid));
}

}  // namespace
}  // namespace sgq

