#include "query/match_engine.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "index/grapes_index.h"
#include "matching/brute_force.h"
#include "matching/cfql.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakePath;

GraphDatabase MakeDb(uint64_t seed) {
  SyntheticParams params;
  params.num_graphs = 20;
  params.vertices_per_graph = 18;
  params.degree = 3.0;
  params.num_labels = 3;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

TEST(MatchEngineTest, CountsMatchBruteForce) {
  const GraphDatabase db = MakeDb(1);
  MatchEngine engine(std::make_unique<CfqlMatcher>());
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));
  Rng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 4, &rng, &q)) continue;
    const MatchResult r = engine.Match(q);
    uint64_t expected_total = 0;
    for (GraphId g = 0; g < db.size(); ++g) {
      const uint64_t count = BruteForceEnumerate(q, db.graph(g), UINT64_MAX);
      expected_total += count;
      const auto it = std::find_if(
          r.matches.begin(), r.matches.end(),
          [g](const GraphMatches& m) { return m.graph == g; });
      if (count > 0) {
        ASSERT_NE(it, r.matches.end()) << "graph " << g;
        EXPECT_EQ(it->num_embeddings, count);
      } else {
        EXPECT_EQ(it, r.matches.end());
      }
    }
    EXPECT_EQ(r.total_embeddings, expected_total);
  }
}

TEST(MatchEngineTest, HybridAgreesWithPureSweep) {
  const GraphDatabase db = MakeDb(3);
  MatchEngine pure(std::make_unique<CfqlMatcher>());
  MatchEngine hybrid(std::make_unique<GrapesIndex>(),
                     std::make_unique<CfqlMatcher>());
  ASSERT_TRUE(pure.Prepare(db, Deadline::Infinite()));
  ASSERT_TRUE(hybrid.Prepare(db, Deadline::Infinite()));
  EXPECT_FALSE(pure.has_index());
  EXPECT_TRUE(hybrid.has_index());
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kDense, 5, &rng, &q)) continue;
    const MatchResult a = pure.Match(q);
    const MatchResult b = hybrid.Match(q);
    EXPECT_EQ(a.total_embeddings, b.total_embeddings);
    ASSERT_EQ(a.matches.size(), b.matches.size());
    for (size_t i = 0; i < a.matches.size(); ++i) {
      EXPECT_EQ(a.matches[i].graph, b.matches[i].graph);
      EXPECT_EQ(a.matches[i].num_embeddings, b.matches[i].num_embeddings);
    }
    // The hybrid runs the matcher on no more graphs than the pure sweep.
    EXPECT_LE(b.stats.num_candidates, a.stats.num_candidates);
  }
}

TEST(MatchEngineTest, PerGraphLimitCapsEnumeration) {
  GraphDatabase db;
  db.Add(MakeCycle({0, 0, 0, 0, 0}));  // many embeddings of an edge
  MatchEngine engine(std::make_unique<CfqlMatcher>());
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));
  MatchOptions options;
  options.per_graph_limit = 3;
  const MatchResult r = engine.Match(MakePath({0, 0}), options);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].num_embeddings, 3u);
}

TEST(MatchEngineTest, CollectsValidEmbeddings) {
  GraphDatabase db;
  db.Add(MakeCycle({0, 1, 0, 1}));
  MatchEngine engine(std::make_unique<CfqlMatcher>());
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));
  MatchOptions options;
  options.collect_embeddings = true;
  const Graph q = MakePath({0, 1});
  const MatchResult r = engine.Match(q, options);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].embeddings.size(), r.matches[0].num_embeddings);
  for (const auto& mapping : r.matches[0].embeddings) {
    ASSERT_EQ(mapping.size(), q.NumVertices());
    EXPECT_TRUE(db.graph(0).HasEdge(mapping[0], mapping[1]));
    EXPECT_EQ(db.graph(0).label(mapping[0]), 0u);
    EXPECT_EQ(db.graph(0).label(mapping[1]), 1u);
  }
}

TEST(MatchEngineTest, EmptyDatabase) {
  GraphDatabase db;
  MatchEngine engine(std::make_unique<CfqlMatcher>());
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));
  const MatchResult r = engine.Match(MakePath({0, 1}));
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.total_embeddings, 0u);
}

}  // namespace
}  // namespace sgq
