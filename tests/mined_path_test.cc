// White-box tests of the mining-based index: support threshold, label
// features always kept, discriminative-ratio selection, and the sound
// "cannot prune on unindexed features" semantics.
#include "index/mined_path_index.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

GraphDatabase PathsDatabase() {
  // 10 graphs: the path (0,1) appears in all, (0,2) in exactly 2.
  GraphDatabase db;
  for (int i = 0; i < 8; ++i) db.Add(MakePath({0, 1}));
  db.Add(MakePath({0, 2}));
  db.Add(MakePath({0, 2, 1}));
  return db;
}

TEST(MinedPathTest, SupportThresholdControlsSelection) {
  const GraphDatabase db = PathsDatabase();

  MinedPathOptions strict;
  strict.min_support = 0.5;  // (0,2)-features appear in 2/10 < 0.5
  MinedPathIndex high(strict);
  ASSERT_TRUE(high.Build(db, Deadline::Infinite()));

  MinedPathOptions loose;
  loose.min_support = 0.1;
  MinedPathIndex low(loose);
  ASSERT_TRUE(low.Build(db, Deadline::Infinite()));

  EXPECT_GT(low.NumSelectedFeatures(), high.NumSelectedFeatures());

  // With the strict threshold, a (0,2) query cannot be pruned by its rare
  // edge feature — only by the label features.
  const Graph q = MakePath({0, 2});
  const auto strict_candidates = high.FilterCandidates(q);
  const auto loose_candidates = low.FilterCandidates(q);
  EXPECT_LE(loose_candidates.size(), strict_candidates.size());
  // Both must retain the true answers.
  for (GraphId g = 0; g < db.size(); ++g) {
    if (BruteForceContains(q, db.graph(g))) {
      EXPECT_TRUE(std::binary_search(strict_candidates.begin(),
                                     strict_candidates.end(), g));
      EXPECT_TRUE(std::binary_search(loose_candidates.begin(),
                                     loose_candidates.end(), g));
    }
  }
}

TEST(MinedPathTest, LabelFeaturesAlwaysUsable) {
  const GraphDatabase db = PathsDatabase();
  MinedPathOptions opts;
  opts.min_support = 0.15;
  MinedPathIndex index(opts);
  ASSERT_TRUE(index.Build(db, Deadline::Infinite()));
  // Label 2 appears in 2/10 graphs (support 0.2 >= 0.15): queries with
  // label 2 prune to those graphs.
  const auto candidates = index.FilterCandidates(MakeGraph({2}, {}));
  EXPECT_EQ(candidates, (std::vector<GraphId>{8, 9}));
}

TEST(MinedPathTest, DiscriminativeRatioDropsRedundantFeatures) {
  // Every graph containing (0,1,0) also contains (0,1) with the same
  // posting list; a high ratio must drop the longer feature.
  GraphDatabase db;
  for (int i = 0; i < 10; ++i) db.Add(MakePath({0, 1, 0}));
  MinedPathOptions keep_all;
  keep_all.min_support = 0.1;
  keep_all.discriminative_ratio = 1.0;  // everything discriminative enough
  MinedPathIndex all(keep_all);
  ASSERT_TRUE(all.Build(db, Deadline::Infinite()));

  MinedPathOptions strict;
  strict.min_support = 0.1;
  strict.discriminative_ratio = 1.5;  // identical postings -> dropped
  MinedPathIndex pruned(strict);
  ASSERT_TRUE(pruned.Build(db, Deadline::Infinite()));

  EXPECT_LT(pruned.NumSelectedFeatures(), all.NumSelectedFeatures());
}

TEST(MinedPathTest, AppendUnsupportedFailsClosed) {
  GraphDatabase db = PathsDatabase();
  MinedPathIndex index;
  ASSERT_TRUE(index.Build(db, Deadline::Infinite()));
  const Graph extra = MakePath({0, 1});
  EXPECT_FALSE(index.AppendGraph(extra, Deadline::Infinite()));
  EXPECT_FALSE(index.built());  // must rebuild after a failed append
}

TEST(MinedPathTest, RandomizedNoFalseDropsAcrossThresholds) {
  SyntheticParams params;
  params.num_graphs = 20;
  params.vertices_per_graph = 16;
  params.degree = 2.5;
  params.num_labels = 3;
  params.seed = 5;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  Rng rng(6);
  for (double support : {0.05, 0.3, 0.8}) {
    MinedPathOptions opts;
    opts.min_support = support;
    MinedPathIndex index(opts);
    ASSERT_TRUE(index.Build(db, Deadline::Infinite()));
    for (int trial = 0; trial < 8; ++trial) {
      Graph q;
      if (!GenerateQuery(db, QueryKind::kSparse, 4, &rng, &q)) continue;
      const auto candidates = index.FilterCandidates(q);
      for (GraphId g = 0; g < db.size(); ++g) {
        if (BruteForceContains(q, db.graph(g))) {
          EXPECT_TRUE(std::binary_search(candidates.begin(),
                                         candidates.end(), g))
              << "support " << support << " dropped " << g;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sgq
