// QueryService unit tests: admission control and backpressure, per-request
// deadlines covering queue wait, graceful shutdown draining, reload, live
// mutations (snapshot isolation, zero quiesce, selective cache
// invalidation), and the stats invariants the server's STATS verb reports.
//
// With SGQ_MUTATION_FUZZ=on, a background MutationFuzzer interleaves
// random ADD/REMOVE mutations (out-of-universe label, so answer sets are
// untouched) into several fixtures — the CI `dynamic` job runs the suite
// this way to shake out mutation/query races under load.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "gen/graph_gen.h"
#include "query/engine_factory.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using Outcome = QueryService::Outcome;

GraphDatabase SmallDb(uint32_t num_graphs = 30) {
  SyntheticParams params;
  params.num_graphs = num_graphs;
  params.vertices_per_graph = 16;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 9;
  return GenerateSyntheticDatabase(params);
}

// K_{n,n} with a single label: dense, symmetric, and bipartite.
Graph CompleteBipartite(uint32_t n) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < 2 * n; ++i) builder.AddVertex(0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) builder.AddEdge(i, n + j);
  }
  return builder.Build();
}

// An odd cycle with the same single label. No odd cycle embeds in a
// bipartite graph, but label/degree/NLF filtering cannot see that, so the
// enumeration must explore an astronomically large candidate space before
// failing — a deterministic "slow query" whose runtime is bounded only by
// its deadline.
Graph OddCycleQuery() {
  return sgq::testing::MakeCycle({0, 0, 0, 0, 0, 0, 0, 0, 0});
}

// A database whose graph 0 is the bipartite trap; the rest are ordinary.
GraphDatabase DbWithHardInstance() {
  GraphDatabase db;
  db.Add(CompleteBipartite(12));
  const GraphDatabase rest = SmallDb();
  for (const Graph& g : rest.graphs()) db.Add(g);
  return db;
}

ServiceConfig Config(uint32_t workers, size_t queue_capacity) {
  ServiceConfig config;
  config.engine_name = "CFQL";
  config.workers = workers;
  config.queue_capacity = queue_capacity;
  return config;
}

// Background mutation noise, enabled by SGQ_MUTATION_FUZZ=on: a thread
// interleaving live ADD/REMOVE mutations into whatever the test is doing.
// The fuzz graphs use label 999 — outside every fixture's label universe —
// so no query's answer set changes, and the destructor removes everything
// it added, so db_graphs is back to baseline before the test's final
// assertions run. A no-op (no thread at all) when the variable is unset.
class MutationFuzzer {
 public:
  explicit MutationFuzzer(QueryService* service) : service_(service) {
    const char* env = std::getenv("SGQ_MUTATION_FUZZ");
    if (env == nullptr || std::string(env) != "on") return;
    thread_ = std::thread([this] { Run(); });
  }

  ~MutationFuzzer() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    GraphBuilder builder;
    builder.AddVertex(999);
    builder.AddVertex(999);
    builder.AddEdge(0, 1);
    const Graph noise = builder.Build();
    std::vector<GraphId> added;
    uint64_t step = 0;
    while (!stop_.load()) {
      if (added.size() < 4 || (step & 1) == 0) {
        const QueryService::MutationResult r = service_->AddGraph(noise);
        if (r.ok) added.push_back(r.global_id);
      } else {
        service_->RemoveGraph(added.back());
        added.pop_back();
      }
      ++step;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (const GraphId gid : added) service_->RemoveGraph(gid);
  }

  QueryService* service_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(QueryServiceTest, ExecutesQueriesLikeADirectEngine) {
  const GraphDatabase reference_db = SmallDb();
  auto engine = MakeEngine("CFQL");
  ASSERT_TRUE(engine->Prepare(reference_db, Deadline::Infinite()));

  QueryService service(Config(/*workers=*/2, /*queue_capacity=*/16));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  {
    MutationFuzzer fuzzer(&service);
    for (GraphId i = 0; i < 5; ++i) {
      const Graph query = reference_db.graph(i);
      const QueryService::Response response = service.Execute(query);
      EXPECT_EQ(response.outcome, Outcome::kOk);
      EXPECT_EQ(response.result.answers,
                engine->Query(query, Deadline::Infinite()).answers);
    }
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.received, 5u);
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.completed_ok, 5u);
  EXPECT_EQ(stats.completed_timeout, 0u);
  EXPECT_EQ(stats.db_graphs, 30u);
}

TEST(QueryServiceTest, UnknownEngineFailsToStart) {
  ServiceConfig config;
  config.engine_name = "NoSuchEngine";
  QueryService service(config);
  std::string error;
  EXPECT_FALSE(service.Start(SmallDb(), &error));
  EXPECT_NE(error.find("unknown engine"), std::string::npos);
}

TEST(QueryServiceTest, TinyDeadlineTimesOutWithoutScanning) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  const QueryService::Response response =
      service.Execute(SmallDb().graph(0), /*timeout_seconds=*/1e-9);
  EXPECT_EQ(response.outcome, Outcome::kTimeout);
  EXPECT_TRUE(response.result.stats.timed_out);
  EXPECT_TRUE(response.result.answers.empty());
  EXPECT_EQ(service.Stats().completed_timeout, 1u);
}

TEST(QueryServiceTest, SlowQueryIsBoundedByItsDeadline) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(DbWithHardInstance(), &error)) << error;
  const auto start = std::chrono::steady_clock::now();
  const QueryService::Response response =
      service.Execute(OddCycleQuery(), /*timeout_seconds=*/0.3);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(response.outcome, Outcome::kTimeout);
  EXPECT_GE(elapsed, 0.25);  // really ran until the deadline
}

TEST(QueryServiceTest, FullQueueRejectsWithOverloaded) {
  QueryService service(Config(/*workers=*/1, /*queue_capacity=*/1));
  std::string error;
  ASSERT_TRUE(service.Start(DbWithHardInstance(), &error)) << error;

  // Occupy the single worker with a deadline-bounded slow query, then fill
  // the one queue slot with a second; the third must bounce.
  std::thread in_flight([&] {
    EXPECT_EQ(service.Execute(OddCycleQuery(), 0.6).outcome,
              Outcome::kTimeout);
  });
  while (service.Stats().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::thread queued([&] {
    // Cancelled at pop: its deadline expires while the worker is busy.
    EXPECT_EQ(service.Execute(OddCycleQuery(), 0.5).outcome,
              Outcome::kTimeout);
  });
  while (service.Stats().queue_depth == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const QueryService::Response rejected = service.Execute(SmallDb().graph(0));
  EXPECT_EQ(rejected.outcome, Outcome::kOverloaded);

  in_flight.join();
  queued.join();
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.received, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_overloaded, 1u);
  EXPECT_EQ(stats.completed_timeout, 2u);
  EXPECT_GE(stats.queue_peak, 1u);
}

TEST(QueryServiceTest, ShutdownDrainsAdmittedRequests) {
  QueryService service(Config(/*workers=*/1, /*queue_capacity=*/8));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  std::vector<std::thread> clients;
  std::vector<Outcome> outcomes(4, Outcome::kShuttingDown);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      outcomes[i] = service.Execute(SmallDb().graph(i)).outcome;
    });
  }
  // Shutdown races the submissions on purpose: every admitted request
  // must still be answered, every late one rejected — never a hang.
  service.Shutdown();
  for (std::thread& client : clients) client.join();
  for (const Outcome outcome : outcomes) {
    EXPECT_TRUE(outcome == Outcome::kOk ||
                outcome == Outcome::kShuttingDown);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.completed_timeout);
  EXPECT_EQ(stats.received,
            stats.admitted + stats.rejected_overloaded);
  EXPECT_EQ(service.Execute(SmallDb().graph(0)).outcome,
            Outcome::kShuttingDown);
}

TEST(QueryServiceTest, ReloadSwapsTheDatabase) {
  // db2 = db1 plus one distinctive pentagon using a label (7) absent from
  // db1, so the query matches only after the reload.
  const Graph pentagon = sgq::testing::MakeCycle({7, 7, 7, 7, 7});
  GraphDatabase db1 = SmallDb(10);
  GraphDatabase db2 = SmallDb(10);
  const GraphId pentagon_id = db2.Add(pentagon);

  QueryService service(Config(2, 8));
  std::string error;
  ASSERT_TRUE(service.Start(std::move(db1), &error)) << error;
  EXPECT_TRUE(service.Execute(pentagon).result.answers.empty());

  ASSERT_TRUE(service.Reload(std::move(db2), &error)) << error;
  const QueryService::Response after = service.Execute(pentagon);
  ASSERT_EQ(after.result.answers.size(), 1u);
  EXPECT_EQ(after.result.answers[0], pentagon_id);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.db_graphs, 11u);
}

TEST(QueryServiceTest, BadRequestCounterFeedsSnapshot) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  service.CountBadRequest();
  service.CountBadRequest();
  EXPECT_EQ(service.Stats().bad_requests, 2u);
  EXPECT_NE(service.Stats().ToJson().find("\"bad_requests\":2"),
            std::string::npos);
}

// Collects every streamed answer id; used to verify the sink path.
class CollectSink : public ResultSink {
 public:
  bool OnAnswer(GraphId id) override {
    ids.push_back(id);
    return true;
  }
  std::vector<GraphId> ids;
};

TEST(QueryServiceTest, ExecuteOptionsLimitStopsEarlyAndStreamsPrefix) {
  QueryService service(Config(2, 8));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  // Single labeled edge — matches many of the 30 graphs.
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddEdge(0, 1);
  const Graph query = builder.Build();

  const QueryService::Response batch = service.Execute(query);
  ASSERT_EQ(batch.outcome, Outcome::kOk);
  ASSERT_GE(batch.result.answers.size(), 3u);

  // limit = 2: the engine stops at the second confirmed answer, and both
  // the streamed ids and the response vector are the batch prefix.
  QueryService::ExecuteOptions options;
  options.limit = 2;
  CollectSink sink;
  options.sink = &sink;
  const QueryService::Response limited = service.Execute(query, options);
  EXPECT_EQ(limited.outcome, Outcome::kOk);
  const std::vector<GraphId> expect(batch.result.answers.begin(),
                                    batch.result.answers.begin() + 2);
  EXPECT_EQ(limited.result.answers, expect);
  EXPECT_EQ(sink.ids, expect);

  // Full stream: the sink sees exactly the batch answer list, in order.
  QueryService::ExecuteOptions stream_options;
  CollectSink full_sink;
  stream_options.sink = &full_sink;
  const QueryService::Response streamed =
      service.Execute(query, stream_options);
  EXPECT_EQ(streamed.outcome, Outcome::kOk);
  EXPECT_EQ(full_sink.ids, batch.result.answers);
  EXPECT_EQ(streamed.result.answers, batch.result.answers);
}

// SJF harness: one worker, held in place by the pre-execute hook so the
// queue can be staged deterministically, then released. The hook records
// the execution order by query vertex count.
struct SjfHarness {
  std::mutex mu;
  std::condition_variable cv;
  bool hold = false;
  std::vector<size_t> exec_order;  // |V(q)| per engine execution, in order

  void Install(ServiceConfig* config) {
    config->pre_execute_hook = [this](const Graph& q) {
      std::unique_lock<std::mutex> lock(mu);
      exec_order.push_back(q.NumVertices());
      cv.wait(lock, [&] { return !hold; });
    };
  }
  void Hold() {
    std::lock_guard<std::mutex> lock(mu);
    hold = true;
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    hold = false;
    cv.notify_all();
  }
  size_t Seen() {
    std::lock_guard<std::mutex> lock(mu);
    return exec_order.size();
  }
};

// Absent label -> zero cost model estimate; cheapest possible request.
Graph ZeroCostQuery() {
  GraphBuilder builder;
  builder.AddVertex(99);
  return builder.Build();
}

// Present labels -> strictly positive estimate.
Graph PositiveCostQuery() {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddEdge(0, 1);
  return builder.Build();
}

// SGQ_SCHED overrides the config either way; the SJF ordering tests only
// make sense when the resolved policy actually is sjf.
bool SjfOverriddenByEnv() {
  const char* env = std::getenv("SGQ_SCHED");
  return env != nullptr && std::string(env) != "sjf";
}

TEST(QueryServiceTest, SjfServesCheapestQueuedRequestFirst) {
  if (SjfOverriddenByEnv()) GTEST_SKIP() << "SGQ_SCHED forces another policy";
  ServiceConfig config = Config(/*workers=*/1, /*queue_capacity=*/8);
  config.sched = "sjf";
  SjfHarness harness;
  harness.Install(&config);
  QueryService service(config);
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  EXPECT_EQ(service.Stats().sched_policy, "sjf");

  // Occupy the single worker, then stage: positive-cost first (arrival
  // order), zero-cost second. SJF must pop the zero-cost one first.
  harness.Hold();
  std::thread blocker([&] {
    EXPECT_EQ(service.Execute(SmallDb().graph(0)).outcome, Outcome::kOk);
  });
  while (harness.Seen() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::thread costly([&] {
    EXPECT_EQ(service.Execute(PositiveCostQuery()).outcome, Outcome::kOk);
  });
  while (service.Stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::thread cheap([&] {
    EXPECT_EQ(service.Execute(ZeroCostQuery()).outcome, Outcome::kOk);
  });
  while (service.Stats().queue_depth < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  harness.Release();
  blocker.join();
  costly.join();
  cheap.join();

  // blocker first, then the 1-vertex zero-cost query despite arriving
  // last, then the 2-vertex positive-cost query.
  const size_t blocker_vertices = SmallDb().graph(0).NumVertices();
  EXPECT_EQ(harness.exec_order,
            (std::vector<size_t>{blocker_vertices, 1, 2}));
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.sched_cheap.count + stats.sched_heavy.count, 3u);
  EXPECT_NE(stats.ToJson().find("\"sched\":{\"policy\":\"sjf\""),
            std::string::npos);
}

TEST(QueryServiceTest, SjfAgingPreventsStarvation) {
  if (SjfOverriddenByEnv()) GTEST_SKIP() << "SGQ_SCHED forces another policy";
  ServiceConfig config = Config(/*workers=*/1, /*queue_capacity=*/8);
  config.sched = "sjf";
  config.sched_aging_ms = 1;  // everything queued >1ms is served FIFO
  SjfHarness harness;
  harness.Install(&config);
  QueryService service(config);
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  harness.Hold();
  std::thread blocker([&] {
    EXPECT_EQ(service.Execute(SmallDb().graph(0)).outcome, Outcome::kOk);
  });
  while (harness.Seen() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The positive-cost request queues first and ages past the threshold
  // before the zero-cost one arrives — aging must override cost order.
  std::thread costly([&] {
    EXPECT_EQ(service.Execute(PositiveCostQuery()).outcome, Outcome::kOk);
  });
  while (service.Stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread cheap([&] {
    EXPECT_EQ(service.Execute(ZeroCostQuery()).outcome, Outcome::kOk);
  });
  while (service.Stats().queue_depth < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  harness.Release();
  blocker.join();
  costly.join();
  cheap.join();

  const size_t blocker_vertices = SmallDb().graph(0).NumVertices();
  EXPECT_EQ(harness.exec_order,
            (std::vector<size_t>{blocker_vertices, 2, 1}));
  EXPECT_GE(service.Stats().sched_aged, 1u);
}

TEST(QueryServiceTest, OverloadedCarriesRetryAfterHint) {
  ServiceConfig config = Config(/*workers=*/1, /*queue_capacity=*/1);
  SjfHarness harness;
  harness.Install(&config);
  QueryService service(config);
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  // Before any completion there is no latency EWMA: an (immediately
  // released) blocked pipeline still rejects, but with hint 0. Then a
  // completed query seeds the EWMA and the next rejection carries >= 1ms.
  harness.Hold();
  std::thread blocker([&] {
    EXPECT_EQ(service.Execute(SmallDb().graph(1)).outcome, Outcome::kOk);
  });
  while (harness.Seen() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::thread queued([&] {
    EXPECT_EQ(service.Execute(SmallDb().graph(2)).outcome, Outcome::kOk);
  });
  while (service.Stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const QueryService::Response first_reject =
      service.Execute(SmallDb().graph(3));
  EXPECT_EQ(first_reject.outcome, Outcome::kOverloaded);
  EXPECT_EQ(first_reject.retry_after_ms, 0u);  // no EWMA yet
  harness.Release();
  blocker.join();
  queued.join();

  // Re-stage the full pipeline, now with a latency EWMA on the books.
  harness.Hold();
  std::thread blocker2([&] {
    EXPECT_EQ(service.Execute(SmallDb().graph(4)).outcome, Outcome::kOk);
  });
  while (harness.Seen() < 3) {  // blocker, queued, blocker2
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::thread queued2([&] {
    EXPECT_EQ(service.Execute(SmallDb().graph(5)).outcome, Outcome::kOk);
  });
  while (service.Stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const QueryService::Response second_reject =
      service.Execute(SmallDb().graph(6));
  EXPECT_EQ(second_reject.outcome, Outcome::kOverloaded);
  EXPECT_GE(second_reject.retry_after_ms, 1u);
  EXPECT_LE(second_reject.retry_after_ms, 30000u);
  harness.Release();
  blocker2.join();
  queued2.join();
}

TEST(QueryServiceTest, ConcurrentMixedWorkloadKeepsInvariants) {
  QueryService service(Config(/*workers=*/2, /*queue_capacity=*/4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  std::atomic<uint64_t> ok{0}, timeout{0}, overloaded{0};
  {
    MutationFuzzer fuzzer(&service);
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < 25; ++i) {
          const double timeout_seconds = (i % 5 == 0) ? 1e-9 : 0;
          const QueryService::Response response =
              service.Execute(SmallDb().graph((c * 25 + i) % 30),
                              timeout_seconds);
          switch (response.outcome) {
            case Outcome::kOk: ++ok; break;
            case Outcome::kTimeout: ++timeout; break;
            case Outcome::kOverloaded: ++overloaded; break;
            case Outcome::kShuttingDown: ADD_FAILURE(); break;
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.received, 100u);
  EXPECT_EQ(stats.completed_ok, ok.load());
  EXPECT_EQ(stats.completed_timeout, timeout.load());
  EXPECT_EQ(stats.rejected_overloaded, overloaded.load());
  EXPECT_EQ(stats.received, stats.admitted + stats.rejected_overloaded);
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.completed_timeout);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

// --- Live mutations ---

// A pentagon on label 7 — absent from SmallDb's universe (labels 0..3),
// so its live count is exactly the answer set of the matching query.
Graph Pentagon() { return sgq::testing::MakeCycle({7, 7, 7, 7, 7}); }

TEST(QueryServiceTest, AddGraphServesTheNewGraphImmediately) {
  QueryService service(Config(2, 8));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;
  EXPECT_TRUE(service.Execute(Pentagon()).result.answers.empty());

  const QueryService::MutationResult added = service.AddGraph(Pentagon());
  ASSERT_TRUE(added.ok) << added.error;
  EXPECT_EQ(added.global_id, 10u);
  EXPECT_EQ(added.db_epoch, 2u);

  const QueryService::Response after = service.Execute(Pentagon());
  EXPECT_EQ(after.outcome, Outcome::kOk);
  EXPECT_EQ(after.result.answers, std::vector<GraphId>{10});
  EXPECT_EQ(after.db_epoch, 2u);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.mutations_add, 1u);
  EXPECT_EQ(stats.db_epoch, 2u);
  EXPECT_EQ(stats.next_global_id, 11u);
  EXPECT_EQ(stats.db_graphs, 11u);
  EXPECT_EQ(stats.cost_model_stale, 0u);
  EXPECT_EQ(stats.cost_model_refreshes, 1u);
}

TEST(QueryServiceTest, RemoveGraphKeepsOtherGlobalIdsStable) {
  // Two pentagons; removing the first must not renumber the second.
  QueryService service(Config(2, 8));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;
  const QueryService::MutationResult first = service.AddGraph(Pentagon());
  const QueryService::MutationResult second = service.AddGraph(Pentagon());
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_EQ(service.Execute(Pentagon()).result.answers,
            (std::vector<GraphId>{first.global_id, second.global_id}));

  const QueryService::MutationResult removed =
      service.RemoveGraph(first.global_id);
  ASSERT_TRUE(removed.ok) << removed.error;
  EXPECT_EQ(service.Execute(Pentagon()).result.answers,
            std::vector<GraphId>{second.global_id});

  // The freed id is never reassigned.
  const QueryService::MutationResult third = service.AddGraph(Pentagon());
  ASSERT_TRUE(third.ok);
  EXPECT_GT(third.global_id, second.global_id);
  EXPECT_EQ(service.Stats().mutations_remove, 1u);
}

TEST(QueryServiceTest, MutationFailuresAreReportedNotFatal) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;
  // Unknown global id.
  EXPECT_FALSE(service.RemoveGraph(99).ok);
  // Forced id below the next free one (the router pre-assigns upwards).
  const GraphId low = 3;
  EXPECT_FALSE(service.AddGraph(Pentagon(), &low).ok);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.mutation_failures, 2u);
  EXPECT_EQ(stats.db_epoch, 1u);  // nothing was published
  // The service still serves queries and accepts valid mutations.
  EXPECT_EQ(service.Execute(SmallDb().graph(0)).outcome, Outcome::kOk);
  EXPECT_TRUE(service.AddGraph(Pentagon()).ok);
}

TEST(QueryServiceTest, MutationsDoNotWaitForInFlightQueries) {
  // The zero-quiesce witness, made deterministic with the pre-execute
  // hook: a query is held mid-execution while a REMOVE lands. The write
  // returns immediately, the reader finishes on its pinned snapshot (the
  // removed graph still in its answers), and the next query sees the new
  // version.
  ServiceConfig config = Config(/*workers=*/1, /*queue_capacity=*/4);
  SjfHarness harness;
  harness.Install(&config);
  QueryService service(config);
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;
  const QueryService::MutationResult added = service.AddGraph(Pentagon());
  ASSERT_TRUE(added.ok);

  harness.Hold();
  QueryService::Response pinned;
  std::thread reader([&] { pinned = service.Execute(Pentagon()); });
  while (harness.Seen() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The reader is executing; the mutation must complete without it.
  const QueryService::MutationResult removed =
      service.RemoveGraph(added.global_id);
  ASSERT_TRUE(removed.ok) << removed.error;
  EXPECT_GT(removed.db_epoch, added.db_epoch);
  harness.Release();
  reader.join();

  // Snapshot isolation: the in-flight reader ran against its admission
  // version, where the pentagon was still live.
  EXPECT_EQ(pinned.outcome, Outcome::kOk);
  EXPECT_EQ(pinned.result.answers, std::vector<GraphId>{added.global_id});
  EXPECT_EQ(pinned.db_epoch, added.db_epoch);
  // A fresh query sees the post-remove version.
  EXPECT_TRUE(service.Execute(Pentagon()).result.answers.empty());

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_GE(stats.mutations_during_queries, 1u);
}

TEST(QueryServiceTest, EveryAnswerMatchesItsAdmissionVersion) {
  // Concurrent mutate+query soak (the TSan-label acceptance shape): every
  // response's answer set must equal the pentagon population of the
  // version identified by its db_epoch — i.e. the answer a re-run against
  // the admission-version database would produce.
  QueryService service(Config(/*workers=*/3, /*queue_capacity=*/32));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;

  std::mutex expected_mu;
  std::map<uint64_t, std::vector<GraphId>> expected_by_epoch;
  expected_by_epoch[1] = {};  // the Start() publish: no pentagons yet
  std::atomic<bool> stop{false};

  std::thread mutator([&] {
    std::vector<GraphId> live;
    uint64_t step = 0;
    while (!stop.load()) {
      if (live.size() < 3 || (step % 3) != 0) {
        const QueryService::MutationResult r = service.AddGraph(Pentagon());
        ASSERT_TRUE(r.ok) << r.error;
        live.push_back(r.global_id);
        std::lock_guard<std::mutex> lock(expected_mu);
        expected_by_epoch[r.db_epoch] = live;
      } else {
        const GraphId doomed = live[step % live.size()];
        live.erase(std::find(live.begin(), live.end(), doomed));
        const QueryService::MutationResult r = service.RemoveGraph(doomed);
        ASSERT_TRUE(r.ok) << r.error;
        std::lock_guard<std::mutex> lock(expected_mu);
        expected_by_epoch[r.db_epoch] = live;
      }
      ++step;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> readers;
  std::vector<std::vector<QueryService::Response>> observed(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        observed[t].push_back(service.Execute(Pentagon()));
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  mutator.join();

  for (const auto& thread_responses : observed) {
    for (const QueryService::Response& response : thread_responses) {
      ASSERT_EQ(response.outcome, Outcome::kOk);
      std::lock_guard<std::mutex> lock(expected_mu);
      const auto it = expected_by_epoch.find(response.db_epoch);
      ASSERT_NE(it, expected_by_epoch.end())
          << "epoch " << response.db_epoch << " never published";
      EXPECT_EQ(response.result.answers, it->second)
          << "answers diverge from the admission version at epoch "
          << response.db_epoch;
    }
  }
}

TEST(QueryServiceTest, SelectiveInvalidationKeepsUnrelatedCacheHits) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  ServiceConfig config = Config(2, 8);
  config.engine.cache_mb = 8;
  QueryService service(config);
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;

  // Warm the cache with a label-0/1 query, then burst writes on the
  // disjoint label-7 universe: the cached entry must survive every one.
  const Graph unrelated = PositiveCostQuery();
  ASSERT_EQ(service.Execute(unrelated).outcome, Outcome::kOk);
  ASSERT_EQ(service.Execute(unrelated).outcome, Outcome::kOk);
  const uint64_t hits_before = service.Stats().cache.hits;
  EXPECT_GE(hits_before, 1u);

  std::vector<GraphId> pentagons;
  for (int i = 0; i < 4; ++i) {
    const QueryService::MutationResult r = service.AddGraph(Pentagon());
    ASSERT_TRUE(r.ok);
    pentagons.push_back(r.global_id);
  }
  for (const GraphId gid : pentagons) {
    ASSERT_TRUE(service.RemoveGraph(gid).ok);
  }

  // Still a hit: 8 mutations, zero relevant ones.
  ASSERT_EQ(service.Execute(unrelated).outcome, Outcome::kOk);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_GT(stats.cache.hits, hits_before);
  EXPECT_EQ(stats.cache.selective_invalidated, 0u);

  // A pentagon-matching entry, by contrast, is purged by a pentagon ADD.
  ASSERT_EQ(service.Execute(Pentagon()).outcome, Outcome::kOk);
  ASSERT_EQ(service.Execute(Pentagon()).outcome, Outcome::kOk);  // hit
  const QueryService::MutationResult readd = service.AddGraph(Pentagon());
  ASSERT_TRUE(readd.ok);
  EXPECT_GE(service.Stats().cache.selective_invalidated, 1u);
  // ...and the re-executed query sees the new graph, not the stale entry.
  EXPECT_EQ(service.Execute(Pentagon()).result.answers,
            std::vector<GraphId>{readd.global_id});
}

TEST(QueryServiceTest, StatsJsonCarriesTheUpdateSection) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(10), &error)) << error;
  ASSERT_TRUE(service.AddGraph(Pentagon()).ok);
  const std::string json = service.Stats().ToJson();
  for (const char* field :
       {"\"update\":{", "\"mutations_add\":1", "\"mutations_remove\":0",
        "\"mutation_failures\":0", "\"mutations_during_queries\":",
        "\"engine_incremental_syncs\":", "\"engine_full_rebuilds\":",
        "\"engine_sync_failures\":", "\"cost_model_refreshes\":",
        "\"cost_model_stale\":", "\"db_epoch\":2", "\"next_global_id\":11"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " in " << json;
  }
}

}  // namespace
}  // namespace sgq
