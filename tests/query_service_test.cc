// QueryService unit tests: admission control and backpressure, per-request
// deadlines covering queue wait, graceful shutdown draining, reload, and
// the stats invariants the server's STATS verb reports.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gen/graph_gen.h"
#include "query/engine_factory.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using Outcome = QueryService::Outcome;

GraphDatabase SmallDb(uint32_t num_graphs = 30) {
  SyntheticParams params;
  params.num_graphs = num_graphs;
  params.vertices_per_graph = 16;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 9;
  return GenerateSyntheticDatabase(params);
}

// K_{n,n} with a single label: dense, symmetric, and bipartite.
Graph CompleteBipartite(uint32_t n) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < 2 * n; ++i) builder.AddVertex(0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) builder.AddEdge(i, n + j);
  }
  return builder.Build();
}

// An odd cycle with the same single label. No odd cycle embeds in a
// bipartite graph, but label/degree/NLF filtering cannot see that, so the
// enumeration must explore an astronomically large candidate space before
// failing — a deterministic "slow query" whose runtime is bounded only by
// its deadline.
Graph OddCycleQuery() {
  return sgq::testing::MakeCycle({0, 0, 0, 0, 0, 0, 0, 0, 0});
}

// A database whose graph 0 is the bipartite trap; the rest are ordinary.
GraphDatabase DbWithHardInstance() {
  GraphDatabase db;
  db.Add(CompleteBipartite(12));
  const GraphDatabase rest = SmallDb();
  for (const Graph& g : rest.graphs()) db.Add(g);
  return db;
}

ServiceConfig Config(uint32_t workers, size_t queue_capacity) {
  ServiceConfig config;
  config.engine_name = "CFQL";
  config.workers = workers;
  config.queue_capacity = queue_capacity;
  return config;
}

TEST(QueryServiceTest, ExecutesQueriesLikeADirectEngine) {
  const GraphDatabase reference_db = SmallDb();
  auto engine = MakeEngine("CFQL");
  ASSERT_TRUE(engine->Prepare(reference_db, Deadline::Infinite()));

  QueryService service(Config(/*workers=*/2, /*queue_capacity=*/16));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  for (GraphId i = 0; i < 5; ++i) {
    const Graph query = reference_db.graph(i);
    const QueryService::Response response = service.Execute(query);
    EXPECT_EQ(response.outcome, Outcome::kOk);
    EXPECT_EQ(response.result.answers,
              engine->Query(query, Deadline::Infinite()).answers);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.received, 5u);
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.completed_ok, 5u);
  EXPECT_EQ(stats.completed_timeout, 0u);
  EXPECT_EQ(stats.db_graphs, 30u);
}

TEST(QueryServiceTest, UnknownEngineFailsToStart) {
  ServiceConfig config;
  config.engine_name = "NoSuchEngine";
  QueryService service(config);
  std::string error;
  EXPECT_FALSE(service.Start(SmallDb(), &error));
  EXPECT_NE(error.find("unknown engine"), std::string::npos);
}

TEST(QueryServiceTest, TinyDeadlineTimesOutWithoutScanning) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  const QueryService::Response response =
      service.Execute(SmallDb().graph(0), /*timeout_seconds=*/1e-9);
  EXPECT_EQ(response.outcome, Outcome::kTimeout);
  EXPECT_TRUE(response.result.stats.timed_out);
  EXPECT_TRUE(response.result.answers.empty());
  EXPECT_EQ(service.Stats().completed_timeout, 1u);
}

TEST(QueryServiceTest, SlowQueryIsBoundedByItsDeadline) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(DbWithHardInstance(), &error)) << error;
  const auto start = std::chrono::steady_clock::now();
  const QueryService::Response response =
      service.Execute(OddCycleQuery(), /*timeout_seconds=*/0.3);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(response.outcome, Outcome::kTimeout);
  EXPECT_GE(elapsed, 0.25);  // really ran until the deadline
}

TEST(QueryServiceTest, FullQueueRejectsWithOverloaded) {
  QueryService service(Config(/*workers=*/1, /*queue_capacity=*/1));
  std::string error;
  ASSERT_TRUE(service.Start(DbWithHardInstance(), &error)) << error;

  // Occupy the single worker with a deadline-bounded slow query, then fill
  // the one queue slot with a second; the third must bounce.
  std::thread in_flight([&] {
    EXPECT_EQ(service.Execute(OddCycleQuery(), 0.6).outcome,
              Outcome::kTimeout);
  });
  while (service.Stats().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::thread queued([&] {
    // Cancelled at pop: its deadline expires while the worker is busy.
    EXPECT_EQ(service.Execute(OddCycleQuery(), 0.5).outcome,
              Outcome::kTimeout);
  });
  while (service.Stats().queue_depth == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const QueryService::Response rejected = service.Execute(SmallDb().graph(0));
  EXPECT_EQ(rejected.outcome, Outcome::kOverloaded);

  in_flight.join();
  queued.join();
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.received, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_overloaded, 1u);
  EXPECT_EQ(stats.completed_timeout, 2u);
  EXPECT_GE(stats.queue_peak, 1u);
}

TEST(QueryServiceTest, ShutdownDrainsAdmittedRequests) {
  QueryService service(Config(/*workers=*/1, /*queue_capacity=*/8));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  std::vector<std::thread> clients;
  std::vector<Outcome> outcomes(4, Outcome::kShuttingDown);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      outcomes[i] = service.Execute(SmallDb().graph(i)).outcome;
    });
  }
  // Shutdown races the submissions on purpose: every admitted request
  // must still be answered, every late one rejected — never a hang.
  service.Shutdown();
  for (std::thread& client : clients) client.join();
  for (const Outcome outcome : outcomes) {
    EXPECT_TRUE(outcome == Outcome::kOk ||
                outcome == Outcome::kShuttingDown);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.completed_timeout);
  EXPECT_EQ(stats.received,
            stats.admitted + stats.rejected_overloaded);
  EXPECT_EQ(service.Execute(SmallDb().graph(0)).outcome,
            Outcome::kShuttingDown);
}

TEST(QueryServiceTest, ReloadSwapsTheDatabase) {
  // db2 = db1 plus one distinctive pentagon using a label (7) absent from
  // db1, so the query matches only after the reload.
  const Graph pentagon = sgq::testing::MakeCycle({7, 7, 7, 7, 7});
  GraphDatabase db1 = SmallDb(10);
  GraphDatabase db2 = SmallDb(10);
  const GraphId pentagon_id = db2.Add(pentagon);

  QueryService service(Config(2, 8));
  std::string error;
  ASSERT_TRUE(service.Start(std::move(db1), &error)) << error;
  EXPECT_TRUE(service.Execute(pentagon).result.answers.empty());

  ASSERT_TRUE(service.Reload(std::move(db2), &error)) << error;
  const QueryService::Response after = service.Execute(pentagon);
  ASSERT_EQ(after.result.answers.size(), 1u);
  EXPECT_EQ(after.result.answers[0], pentagon_id);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.db_graphs, 11u);
}

TEST(QueryServiceTest, BadRequestCounterFeedsSnapshot) {
  QueryService service(Config(1, 4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  service.CountBadRequest();
  service.CountBadRequest();
  EXPECT_EQ(service.Stats().bad_requests, 2u);
  EXPECT_NE(service.Stats().ToJson().find("\"bad_requests\":2"),
            std::string::npos);
}

TEST(QueryServiceTest, ConcurrentMixedWorkloadKeepsInvariants) {
  QueryService service(Config(/*workers=*/2, /*queue_capacity=*/4));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  std::atomic<uint64_t> ok{0}, timeout{0}, overloaded{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 25; ++i) {
        const double timeout_seconds = (i % 5 == 0) ? 1e-9 : 0;
        const QueryService::Response response =
            service.Execute(SmallDb().graph((c * 25 + i) % 30),
                            timeout_seconds);
        switch (response.outcome) {
          case Outcome::kOk: ++ok; break;
          case Outcome::kTimeout: ++timeout; break;
          case Outcome::kOverloaded: ++overloaded; break;
          case Outcome::kShuttingDown: ADD_FAILURE(); break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.received, 100u);
  EXPECT_EQ(stats.completed_ok, ok.load());
  EXPECT_EQ(stats.completed_timeout, timeout.load());
  EXPECT_EQ(stats.rejected_overloaded, overloaded.load());
  EXPECT_EQ(stats.received, stats.admitted + stats.rejected_overloaded);
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.completed_timeout);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

}  // namespace
}  // namespace sgq
