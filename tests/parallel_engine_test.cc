#include "query/parallel_vcfv_engine.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "matching/cfql.h"
#include "query/engine_factory.h"
#include "util/rng.h"

namespace sgq {
namespace {

GraphDatabase MakeDb(uint64_t seed, uint32_t graphs) {
  SyntheticParams params;
  params.num_graphs = graphs;
  params.vertices_per_graph = 25;
  params.degree = 3.5;
  params.num_labels = 5;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

TEST(ParallelVcfvTest, AgreesWithSerialCfql) {
  const GraphDatabase db = MakeDb(1, 60);
  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParallelVcfvEngine parallel(
        "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); },
        threads);
    ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
    Rng rng(7);
    for (int trial = 0; trial < 8; ++trial) {
      Graph q;
      if (!GenerateQuery(db, QueryKind::kSparse, 6, &rng, &q)) continue;
      const QueryResult expected = serial->Query(q);
      const QueryResult actual = parallel.Query(q, Deadline::Infinite());
      EXPECT_EQ(actual.answers, expected.answers)
          << threads << " threads, trial " << trial;
      EXPECT_EQ(actual.stats.num_candidates, expected.stats.num_candidates);
      EXPECT_FALSE(actual.stats.timed_out);
    }
  }
}

TEST(ParallelVcfvTest, AnswersSortedAndStatsConsistent) {
  const GraphDatabase db = MakeDb(2, 40);
  auto engine = MakeEngine("CFQL-parallel");
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  Rng rng(9);
  Graph q;
  ASSERT_TRUE(GenerateQuery(db, QueryKind::kDense, 6, &rng, &q));
  const QueryResult r = engine->Query(q);
  EXPECT_TRUE(std::is_sorted(r.answers.begin(), r.answers.end()));
  EXPECT_EQ(r.stats.num_answers, r.answers.size());
  EXPECT_LE(r.stats.num_answers, r.stats.num_candidates);
  EXPECT_GE(r.stats.filtering_ms, 0.0);
  EXPECT_GE(r.stats.verification_ms, 0.0);
  EXPECT_EQ(engine->IndexMemoryBytes(), 0u);
}

TEST(ParallelVcfvTest, DefaultsToHardwareConcurrency) {
  ParallelVcfvEngine engine("p",
                            [] { return std::make_unique<CfqlMatcher>(); });
  EXPECT_GE(engine.num_threads(), 1u);
}

}  // namespace
}  // namespace sgq
