#include "matching/vf2.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "graph/graph_utils.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

class Vf2Test : public ::testing::TestWithParam<bool> {
 protected:
  Vf2 vf2_{Vf2Options{.heuristic_order = GetParam()}};
};

TEST_P(Vf2Test, TriangleAutomorphisms) {
  const Graph tri = MakeCycle({0, 0, 0});
  EXPECT_EQ(vf2_.Enumerate(tri, tri, UINT64_MAX, nullptr).embeddings, 6u);
}

TEST_P(Vf2Test, NonInducedMatching) {
  // A path query must match inside a triangle (monomorphism, not induced).
  const Graph q = MakePath({0, 0, 0});
  const Graph g = MakeCycle({0, 0, 0});
  EXPECT_EQ(vf2_.Enumerate(q, g, UINT64_MAX, nullptr).embeddings, 6u);
  DeadlineChecker unlimited{Deadline::Infinite()};
  EXPECT_EQ(vf2_.Contains(q, g, &unlimited), 1);
}

TEST_P(Vf2Test, RespectsLabels) {
  const Graph q = MakePath({0, 1});
  const Graph g = MakePath({0, 0});
  DeadlineChecker unlimited{Deadline::Infinite()};
  EXPECT_EQ(vf2_.Contains(q, g, &unlimited), 0);
}

TEST_P(Vf2Test, LimitRespected) {
  const Graph q = MakePath({0, 0});
  const Graph g = MakeCycle({0, 0, 0, 0});
  EXPECT_EQ(vf2_.Enumerate(q, g, 5, nullptr).embeddings, 5u);
}

TEST_P(Vf2Test, SingleVertexQuery) {
  const Graph q = MakeGraph({2}, {});
  const Graph g = MakeGraph({2, 2, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(vf2_.Enumerate(q, g, UINT64_MAX, nullptr).embeddings, 2u);
}

TEST_P(Vf2Test, CallbackMappingsValid) {
  const Graph q = MakeCycle({0, 1, 0, 1});
  const Graph g = MakeGraph({0, 1, 0, 1, 0},
                            {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 1}});
  uint64_t count = 0;
  vf2_.Enumerate(q, g, UINT64_MAX, nullptr,
                 [&](const std::vector<VertexId>& mapping) {
                   ++count;
                   for (VertexId u = 0; u < q.NumVertices(); ++u) {
                     EXPECT_EQ(q.label(u), g.label(mapping[u]));
                     for (VertexId w : q.Neighbors(u)) {
                       EXPECT_TRUE(g.HasEdge(mapping[u], mapping[w]));
                     }
                   }
                   return true;
                 });
  EXPECT_EQ(count, BruteForceEnumerate(q, g, UINT64_MAX));
}

TEST_P(Vf2Test, RandomizedAgainstBruteForce) {
  Rng rng(99 + (GetParam() ? 1 : 0));
  std::vector<Label> labels = {0, 1, 2};
  for (int trial = 0; trial < 120; ++trial) {
    const uint32_t qn = 2 + static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t gn = 4 + static_cast<uint32_t>(rng.NextBounded(10));
    const Graph q =
        GenerateRandomGraph(qn, 1.0 + rng.NextDouble() * 2.0, labels, &rng);
    const Graph g =
        GenerateRandomGraph(gn, 1.0 + rng.NextDouble() * 3.0, labels, &rng);
    if (!IsConnected(q)) continue;
    const uint64_t expected = BruteForceEnumerate(q, g, UINT64_MAX);
    EXPECT_EQ(vf2_.Enumerate(q, g, UINT64_MAX, nullptr).embeddings, expected)
        << "trial " << trial;
  }
}

TEST_P(Vf2Test, DeadlineAborts) {
  // A worst case for VF2: unlabeled dense query in a larger dense graph
  // with no match; a tiny deadline must abort with -1.
  Rng rng(5);
  std::vector<Label> labels = {0};
  const Graph q = GenerateRandomGraph(14, 9.0, labels, &rng);
  const Graph g = GenerateRandomGraph(160, 7.0, labels, &rng);
  DeadlineChecker tight{Deadline::AfterSeconds(1e-4)};
  const int result = vf2_.Contains(q, g, &tight);
  // Either it finished very fast (1/0) or aborted (-1); with this size the
  // practical outcome is -1, but the contract only promises "no hang".
  EXPECT_TRUE(result == -1 || result == 0 || result == 1);
}

INSTANTIATE_TEST_SUITE_P(PlainAndHeuristic, Vf2Test, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "HeuristicOrder" : "Plain";
                         });

}  // namespace
}  // namespace sgq
