// Regression test for the service-queue cancellation contract: Query() on
// an already-expired Deadline must report the OOT outcome immediately, for
// every engine type, without scanning the database. Before the fix, several
// engines processed at least the first graph (and IFV engines could scan
// the whole candidate list, because their DeadlineChecker only polls the
// clock every 1024 ticks).
#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "matching/cfql.h"
#include "query/engine_factory.h"
#include "query/match_engine.h"
#include "tests/test_util.h"
#include "util/deadline.h"

namespace sgq {
namespace {

GraphDatabase SmallDb() {
  SyntheticParams params;
  params.num_graphs = 20;
  params.vertices_per_graph = 16;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 5;
  return GenerateSyntheticDatabase(params);
}

// Every engine the factory can build, paper algorithms and extensions.
std::vector<std::string> EveryEngineName() {
  std::vector<std::string> names = AllEngineNames();
  names.insert(names.end(), {"TurboIso", "Ullmann", "QuickSI", "SPath",
                             "GraphGrep", "MinedPath", "CFQL-parallel",
                             "VF2-scan"});
  return names;
}

TEST(DeadlineTest, ExpiredDeadlineReturnsTimeoutWithoutScanning) {
  const GraphDatabase db = SmallDb();
  // A query that is a subgraph of at least one data graph (itself), so a
  // non-empty answer set would prove the engine scanned despite the
  // expired deadline.
  const Graph query = db.graph(0);
  for (const std::string& name : EveryEngineName()) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name);
    ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
    const QueryResult expired =
        engine->Query(query, Deadline::AfterSeconds(-1));
    EXPECT_TRUE(expired.stats.timed_out);
    EXPECT_TRUE(expired.answers.empty());
    EXPECT_EQ(expired.stats.si_tests, 0u);
    EXPECT_EQ(expired.stats.num_candidates, 0u);

    // Sanity: the same engine does answer under an unexpired deadline.
    const QueryResult fine = engine->Query(query, Deadline::Infinite());
    EXPECT_FALSE(fine.stats.timed_out);
    EXPECT_FALSE(fine.answers.empty());
  }
}

TEST(DeadlineTest, AfterSecondsZeroCountsAsExpired) {
  const GraphDatabase db = SmallDb();
  auto engine = MakeEngine("CFQL");
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  const QueryResult r = engine->Query(db.graph(0), Deadline::AfterSeconds(0));
  EXPECT_TRUE(r.stats.timed_out);
  EXPECT_TRUE(r.answers.empty());
}

TEST(DeadlineTest, MatchEngineHonorsExpiredDeadline) {
  const GraphDatabase db = SmallDb();
  MatchEngine engine(std::make_unique<CfqlMatcher>());
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));
  const MatchResult r = engine.Match(db.graph(0), MatchOptions{},
                                     Deadline::AfterSeconds(-1));
  EXPECT_TRUE(r.stats.timed_out);
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.stats.si_tests, 0u);
}

TEST(DeadlineTest, ExpiredPrepareStillFailsForIndexEngines) {
  const GraphDatabase db = SmallDb();
  for (const char* name : {"Grapes", "GGSX", "CT-Index"}) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name);
    EXPECT_FALSE(engine->Prepare(db, Deadline::AfterSeconds(-1)));
  }
}

}  // namespace
}  // namespace sgq
