#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeGraph;

TEST(GraphIoTest, ParsesSimpleDatabase) {
  const char* text =
      "t # 0\n"
      "v 0 1\n"
      "v 1 2\n"
      "e 0 1\n"
      "t # 1\n"
      "v 0 5\n";
  GraphDatabase db;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &db, &error)) << error;
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.graph(0).NumVertices(), 2u);
  EXPECT_EQ(db.graph(0).NumEdges(), 1u);
  EXPECT_EQ(db.graph(0).label(1), 2u);
  EXPECT_EQ(db.graph(1).NumVertices(), 1u);
  EXPECT_EQ(db.graph(1).label(0), 5u);
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  const char* text =
      "# a comment\n"
      "\n"
      "t # 0\n"
      "v 0 1\n"
      "\n"
      "# another\n"
      "v 1 1\n"
      "e 0 1 42\n";  // trailing edge label is tolerated
  GraphDatabase db;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &db, &error)) << error;
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.graph(0).NumEdges(), 1u);
}

TEST(GraphIoTest, RejectsVertexBeforeHeader) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("v 0 1\n", &db, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 1 0\n", &db, &error));
  EXPECT_NE(error.find("dense"), std::string::npos);
}

TEST(GraphIoTest, RejectsEdgeToUndeclaredVertex) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0 0\ne 0 3\n", &db, &error));
}

TEST(GraphIoTest, RejectsSelfLoop) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0 0\ne 0 0\n", &db, &error));
}

TEST(GraphIoTest, RejectsDuplicateEdge) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(
      ParseDatabase("t # 0\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n", &db, &error));
}

TEST(GraphIoTest, RejectsMalformedTokens) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv zero 1\n", &db, &error));
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0\n", &db, &error));
  EXPECT_FALSE(ParseDatabase("x 1 2\n", &db, &error));
}

TEST(GraphIoTest, RejectsMalformedGraphHeader) {
  GraphDatabase db;
  std::string error;
  // Anything but '#' in the separator slot is a malformed header, not a
  // silently ignored one.
  EXPECT_FALSE(ParseDatabase("t 0\nv 0 1\n", &db, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("header"), std::string::npos) << error;
  // A bare "t" stays accepted (seen in the wild).
  EXPECT_TRUE(ParseDatabase("t\nv 0 1\n", &db, &error)) << error;
}

TEST(GraphIoTest, RejectsVertexLineWithExtraTokens) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0 1 7\n", &db, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("vertex"), std::string::npos) << error;
}

TEST(GraphIoTest, RejectsVertexIdAtReservedSentinel) {
  GraphDatabase db;
  std::string error;
  // 4294967295 == kInvalidVertex: the id parses as a u32 but collides with
  // the sentinel, so it must be rejected with a line number BEFORE reaching
  // the builder (even though the dense-ids check would also fire here, the
  // range check guards direct builder indexing).
  std::string text = "t # 0\n";
  EXPECT_FALSE(ParseDatabase(text + "v 4294967295 0\n", &db, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(GraphIoTest, RejectsEdgeLineWithTooManyTokens) {
  GraphDatabase db;
  std::string error;
  // 4 tokens (trailing edge label) OK; 5 rejected with a line number.
  EXPECT_TRUE(
      ParseDatabase("t # 0\nv 0 1\nv 1 1\ne 0 1 9\n", &db, &error)) << error;
  EXPECT_FALSE(
      ParseDatabase("t # 0\nv 0 1\nv 1 1\ne 0 1 9 9\n", &db, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
}

TEST(GraphIoTest, DuplicateEdgeReportsLineNumber) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase(
      "t # 0\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n", &db, &error));
  EXPECT_NE(error.find("line 5"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(GraphIoTest, RoundTrip) {
  GraphDatabase db;
  db.Add(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}}));
  db.Add(MakeGraph({9}, {}));
  const std::string text = SerializeDatabase(db);

  GraphDatabase reparsed;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.size(), db.size());
  for (GraphId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(SerializeGraph(db.graph(i), i),
              SerializeGraph(reparsed.graph(i), i));
  }
}

TEST(GraphIoTest, ParseSingleGraph) {
  Graph g;
  std::string error;
  ASSERT_TRUE(ParseSingleGraph("t # 0\nv 0 3\nv 1 3\ne 0 1\n", &g, &error))
      << error;
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_FALSE(ParseSingleGraph("t # 0\nv 0 3\nt # 1\nv 0 4\n", &g, &error));
  EXPECT_FALSE(ParseSingleGraph("", &g, &error));
}

TEST(GraphIoTest, FileRoundTrip) {
  GraphDatabase db;
  db.Add(MakeGraph({0, 1}, {{0, 1}}));
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgq_io_test.db").string();
  std::string error;
  ASSERT_TRUE(SaveDatabase(db, path, &error)) << error;
  GraphDatabase loaded;
  ASSERT_TRUE(LoadDatabase(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadDatabase("/nonexistent/path/xyz.db", &loaded, &error));
}

}  // namespace
}  // namespace sgq
