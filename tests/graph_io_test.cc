#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeGraph;

TEST(GraphIoTest, ParsesSimpleDatabase) {
  const char* text =
      "t # 0\n"
      "v 0 1\n"
      "v 1 2\n"
      "e 0 1\n"
      "t # 1\n"
      "v 0 5\n";
  GraphDatabase db;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &db, &error)) << error;
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.graph(0).NumVertices(), 2u);
  EXPECT_EQ(db.graph(0).NumEdges(), 1u);
  EXPECT_EQ(db.graph(0).label(1), 2u);
  EXPECT_EQ(db.graph(1).NumVertices(), 1u);
  EXPECT_EQ(db.graph(1).label(0), 5u);
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  const char* text =
      "# a comment\n"
      "\n"
      "t # 0\n"
      "v 0 1\n"
      "\n"
      "# another\n"
      "v 1 1\n"
      "e 0 1 42\n";  // trailing edge label is tolerated
  GraphDatabase db;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &db, &error)) << error;
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.graph(0).NumEdges(), 1u);
}

TEST(GraphIoTest, RejectsVertexBeforeHeader) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("v 0 1\n", &db, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 1 0\n", &db, &error));
  EXPECT_NE(error.find("dense"), std::string::npos);
}

TEST(GraphIoTest, RejectsEdgeToUndeclaredVertex) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0 0\ne 0 3\n", &db, &error));
}

TEST(GraphIoTest, RejectsSelfLoop) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0 0\ne 0 0\n", &db, &error));
}

TEST(GraphIoTest, RejectsDuplicateEdge) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(
      ParseDatabase("t # 0\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n", &db, &error));
}

TEST(GraphIoTest, RejectsMalformedTokens) {
  GraphDatabase db;
  std::string error;
  EXPECT_FALSE(ParseDatabase("t # 0\nv zero 1\n", &db, &error));
  EXPECT_FALSE(ParseDatabase("t # 0\nv 0\n", &db, &error));
  EXPECT_FALSE(ParseDatabase("x 1 2\n", &db, &error));
}

TEST(GraphIoTest, RoundTrip) {
  GraphDatabase db;
  db.Add(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}}));
  db.Add(MakeGraph({9}, {}));
  const std::string text = SerializeDatabase(db);

  GraphDatabase reparsed;
  std::string error;
  ASSERT_TRUE(ParseDatabase(text, &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.size(), db.size());
  for (GraphId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(SerializeGraph(db.graph(i), i),
              SerializeGraph(reparsed.graph(i), i));
  }
}

TEST(GraphIoTest, ParseSingleGraph) {
  Graph g;
  std::string error;
  ASSERT_TRUE(ParseSingleGraph("t # 0\nv 0 3\nv 1 3\ne 0 1\n", &g, &error))
      << error;
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_FALSE(ParseSingleGraph("t # 0\nv 0 3\nt # 1\nv 0 4\n", &g, &error));
  EXPECT_FALSE(ParseSingleGraph("", &g, &error));
}

TEST(GraphIoTest, FileRoundTrip) {
  GraphDatabase db;
  db.Add(MakeGraph({0, 1}, {{0, 1}}));
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgq_io_test.db").string();
  std::string error;
  ASSERT_TRUE(SaveDatabase(db, path, &error)) << error;
  GraphDatabase loaded;
  ASSERT_TRUE(LoadDatabase(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadDatabase("/nonexistent/path/xyz.db", &loaded, &error));
}

}  // namespace
}  // namespace sgq
