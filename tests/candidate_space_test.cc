#include "matching/candidate_space.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

TEST(CandidateSetsTest, EmptyByDefault) {
  CandidateSets phi;
  EXPECT_EQ(phi.NumQueryVertices(), 0u);
  EXPECT_FALSE(phi.AllNonEmpty());  // no query vertices -> not "all"
  EXPECT_EQ(phi.TotalCandidates(), 0u);
}

TEST(CandidateSetsTest, ContainsUsesBinarySearch) {
  CandidateSets phi(2);
  phi.mutable_set(0) = {1, 3, 5, 9};
  phi.mutable_set(1) = {2};
  EXPECT_TRUE(phi.Contains(0, 3));
  EXPECT_TRUE(phi.Contains(0, 9));
  EXPECT_FALSE(phi.Contains(0, 2));
  EXPECT_TRUE(phi.Contains(1, 2));
  EXPECT_FALSE(phi.Contains(1, 3));
}

TEST(CandidateSetsTest, AllNonEmptyDetectsGaps) {
  CandidateSets phi(3);
  phi.mutable_set(0) = {1};
  phi.mutable_set(1) = {2};
  EXPECT_FALSE(phi.AllNonEmpty());
  phi.mutable_set(2) = {0};
  EXPECT_TRUE(phi.AllNonEmpty());
}

TEST(CandidateSetsTest, TotalsAndMemory) {
  CandidateSets phi(2);
  phi.mutable_set(0) = {1, 2, 3};
  phi.mutable_set(1) = {4};
  EXPECT_EQ(phi.TotalCandidates(), 4u);
  EXPECT_GT(phi.MemoryBytes(), 4 * sizeof(VertexId));
}

TEST(LdfNlfTest, LabelFilter) {
  const Graph q = MakePath({1, 2});
  const Graph g = MakeGraph({1, 2, 1, 3}, {{0, 1}, {1, 2}, {2, 3}});
  const auto cands = LdfNlfCandidates(q, g, 0, /*use_nlf=*/false);
  // Label-1 vertices with degree >= 1: v0 and v2.
  EXPECT_EQ(cands, (std::vector<VertexId>{0, 2}));
}

TEST(LdfNlfTest, DegreeFilter) {
  const Graph q = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});  // d(u0) = 2
  const Graph g = MakeGraph({0, 1, 0, 1, 1},
                            {{0, 1}, {2, 1}, {2, 3}, {2, 4}});
  // Label-0 data vertices: v0 (degree 1, fails), v2 (degree 3, passes).
  const auto cands = LdfNlfCandidates(q, g, 0, /*use_nlf=*/false);
  EXPECT_EQ(cands, (std::vector<VertexId>{2}));
}

TEST(LdfNlfTest, NlfPrunesMissingNeighborLabels) {
  // u0 needs neighbors with labels {1, 2}.
  const Graph q = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}});
  // v0 has neighbor labels {1, 1}: degree passes, NLF fails.
  // v3 has neighbor labels {1, 2}: passes.
  const Graph g = MakeGraph({0, 1, 1, 0, 1, 2},
                            {{0, 1}, {0, 2}, {3, 4}, {3, 5}});
  EXPECT_EQ(LdfNlfCandidates(q, g, 0, /*use_nlf=*/false),
            (std::vector<VertexId>{0, 3}));
  EXPECT_EQ(LdfNlfCandidates(q, g, 0, /*use_nlf=*/true),
            (std::vector<VertexId>{3}));
}

TEST(LdfNlfTest, PassesLdfNlfAgreesWithGenerator) {
  const Graph q = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}});
  const Graph g = MakeGraph({0, 1, 1, 0, 1, 2},
                            {{0, 1}, {0, 2}, {3, 4}, {3, 5}});
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    const auto cands = LdfNlfCandidates(q, g, u, true);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const bool expected =
          std::find(cands.begin(), cands.end(), v) != cands.end();
      EXPECT_EQ(PassesLdfNlf(q, g, u, v, true), expected)
          << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace sgq
