// White-box tests of TurboIso's candidate regions: per-root partitioning,
// region-level completeness, and the parent-precedence of region orders.
#include "matching/turboiso.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

const TurboIsoData& AsTurbo(const FilterData& data) {
  return dynamic_cast<const TurboIsoData&>(data);
}

TEST(TurboIsoTest, RegionsPartitionByRootCandidate) {
  const Graph q = MakePath({0, 1, 2});
  const Graph g = MakeGraph({0, 1, 2, 0, 1, 2},
                            {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  TurboIsoMatcher matcher;
  const auto data = matcher.Filter(q, g);
  const TurboIsoData& turbo = AsTurbo(*data);
  ASSERT_FALSE(turbo.regions.empty());
  // Root candidates are distinct across regions.
  std::set<VertexId> roots;
  for (const CandidateRegion& r : turbo.regions) {
    EXPECT_TRUE(roots.insert(r.root_candidate).second);
    // Region root set is exactly {root_candidate}.
    ASSERT_EQ(r.candidates[turbo.tree.root].size(), 1u);
    EXPECT_EQ(r.candidates[turbo.tree.root][0], r.root_candidate);
  }
}

TEST(TurboIsoTest, RegionCompletenessPerRoot) {
  // Every embedding that maps the tree root to v must have all its mapped
  // vertices inside region(v).
  Rng rng(91);
  std::vector<Label> labels = {0, 1, 2};
  TurboIsoMatcher matcher;
  for (int trial = 0; trial < 50; ++trial) {
    const Graph q = GenerateRandomGraph(4, 1.6, labels, &rng);
    if (!IsConnected(q)) continue;
    const Graph g = GenerateRandomGraph(20, 3.5, labels, &rng);
    const auto data = matcher.Filter(q, g);
    const TurboIsoData& turbo = AsTurbo(*data);
    for (const auto& mapping : BruteForceAllEmbeddings(q, g)) {
      const VertexId root_image = mapping[turbo.tree.root];
      const CandidateRegion* region = nullptr;
      for (const CandidateRegion& r : turbo.regions) {
        if (r.root_candidate == root_image) region = &r;
      }
      ASSERT_NE(region, nullptr) << "missing region, trial " << trial;
      for (VertexId u = 0; u < q.NumVertices(); ++u) {
        EXPECT_TRUE(std::binary_search(region->candidates[u].begin(),
                                       region->candidates[u].end(),
                                       mapping[u]))
            << "trial " << trial << " u=" << u;
      }
    }
  }
}

TEST(TurboIsoTest, StartVertexMinimizesFreqOverDegree) {
  // Query: high-degree vertex with rare label should win the start rule.
  const Graph q = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  // Data: label 0 appears once, label 1 many times.
  const Graph g = MakeGraph({0, 1, 1, 1, 1, 1},
                            {{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}});
  TurboIsoMatcher matcher;
  const auto data = matcher.Filter(q, g);
  const TurboIsoData& turbo = AsTurbo(*data);
  EXPECT_EQ(turbo.tree.root, 0u);  // freq(0)/deg(3) = 1/3 beats 5/1
}

TEST(TurboIsoTest, NoRegionsMeansFilteredOut) {
  const Graph q = MakeCycle({0, 0, 0});
  const Graph g = MakePath({0, 0, 0, 0});  // no triangle
  TurboIsoMatcher matcher;
  const auto data = matcher.Filter(q, g);
  EXPECT_FALSE(data->Passed());
  EXPECT_EQ(matcher.Enumerate(q, g, *data, UINT64_MAX, nullptr).embeddings,
            0u);
}

TEST(TurboIsoTest, MemoryBytesIncludesRegions) {
  const Graph q = MakePath({0, 1});
  const Graph g = MakeCycle({0, 1, 0, 1});
  TurboIsoMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());
  EXPECT_GT(data->MemoryBytes(), data->phi.MemoryBytes());
}


}  // namespace
}  // namespace sgq
