#include "index/path_enumerator.h"

#include <gtest/gtest.h>

#include <functional>

#include "index/path_trie.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

PathFeatureCounts Enumerate(const Graph& g, uint32_t max_edges) {
  PathFeatureCounts out;
  DeadlineChecker unlimited{Deadline::Infinite()};
  EXPECT_TRUE(EnumeratePathFeatures(g, max_edges, &unlimited, &out));
  return out;
}

TEST(FeatureKeyTest, PackingRoundTrip) {
  const FeatureKey a = MakePathKey({1, 2});
  const FeatureKey b = MakePathKey({1, 2});
  const FeatureKey c = MakePathKey({2, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(KeyLength(a), 2u);
  EXPECT_LT(a, c);  // lexicographic on label sequences
}

TEST(PathEnumeratorTest, SingleEdgeDistinctLabels) {
  const Graph g = MakePath({0, 1});
  const auto counts = Enumerate(g, 4);
  // Features: [0], [1], [0,1] (canonical direction).
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts.at(MakePathKey({0})), 1u);
  EXPECT_EQ(counts.at(MakePathKey({1})), 1u);
  EXPECT_EQ(counts.at(MakePathKey({0, 1})), 1u);
  EXPECT_EQ(counts.count(MakePathKey({1, 0})), 0u);
}

TEST(PathEnumeratorTest, PalindromeCountedFromBothEnds) {
  const Graph g = MakePath({3, 3});
  const auto counts = Enumerate(g, 4);
  // [3] twice (two vertices); [3,3] counted from both directions.
  EXPECT_EQ(counts.at(MakePathKey({3})), 2u);
  EXPECT_EQ(counts.at(MakePathKey({3, 3})), 2u);
}

TEST(PathEnumeratorTest, RespectsMaxEdges) {
  const Graph g = MakePath({0, 1, 2, 3, 4});
  const auto counts = Enumerate(g, 2);
  for (const auto& [key, count] : counts) {
    EXPECT_LE(KeyLength(key), 3u);  // <= 2 edges -> <= 3 labels
  }
  EXPECT_TRUE(counts.count(MakePathKey({0, 1, 2})) > 0);
  EXPECT_EQ(counts.count(MakePathKey({0, 1, 2, 3})), 0u);
}

TEST(PathEnumeratorTest, SimplePathsOnly) {
  // Triangle with one label: longest simple path has 3 vertices.
  const Graph g = MakeCycle({0, 0, 0});
  const auto counts = Enumerate(g, 4);
  for (const auto& [key, count] : counts) {
    EXPECT_LE(KeyLength(key), 3u);
  }
  // 3 directed walks of length 2 per starting pair... verify count of the
  // 3-label path: 6 directed simple paths of 3 vertices, palindromic
  // sequence (0,0,0) counted from both directions -> 6.
  EXPECT_EQ(counts.at(MakePathKey({0, 0, 0})), 6u);
}

TEST(PathEnumeratorTest, QueryDataCountConsistency) {
  // The Grapes filter invariant: if q ⊆ G then for every feature f,
  // count_q(f) <= count_G(f). Spot-check on a path inside a cycle.
  const Graph q = MakePath({1, 0, 1});
  const Graph g = MakeCycle({1, 0, 1, 0});
  const auto qc = Enumerate(q, 4);
  const auto gc = Enumerate(g, 4);
  for (const auto& [key, count] : qc) {
    ASSERT_TRUE(gc.count(key) > 0) << "feature missing";
    EXPECT_GE(gc.at(key), count);
  }
}

TEST(PathEnumeratorTest, DeadlineAborts) {
  // A dense unlabeled graph has an astronomical number of simple paths.
  GraphBuilder b;
  for (int i = 0; i < 40; ++i) b.AddVertex(0);
  for (VertexId u = 0; u < 40; ++u) {
    for (VertexId v = u + 1; v < 40; ++v) b.AddEdge(u, v);
  }
  const Graph g = b.Build();
  PathFeatureCounts out;
  DeadlineChecker tight{Deadline::AfterSeconds(1e-4)};
  EXPECT_FALSE(EnumeratePathFeatures(g, 6, &tight, &out));
}

TEST(PathTrieTest, InsertAndFind) {
  PathTrie trie(/*store_counts=*/true);
  trie.Insert(MakePathKey({0, 1}), 0, 2);
  trie.Insert(MakePathKey({0, 1}), 2, 5);
  trie.Insert(MakePathKey({0}), 1, 1);

  const std::vector<uint32_t>* counts = nullptr;
  const auto* graphs = trie.Find(MakePathKey({0, 1}), &counts);
  ASSERT_NE(graphs, nullptr);
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(*graphs, (std::vector<GraphId>{0, 2}));
  EXPECT_EQ(*counts, (std::vector<uint32_t>{2, 5}));

  EXPECT_EQ(trie.Find(MakePathKey({9}), nullptr), nullptr);
  EXPECT_EQ(trie.Find(MakePathKey({0, 1, 2}), nullptr), nullptr);
  // Prefix node exists but has its own postings.
  const auto* prefix = trie.Find(MakePathKey({0}), nullptr);
  ASSERT_NE(prefix, nullptr);
  EXPECT_EQ(*prefix, (std::vector<GraphId>{1}));
}

TEST(PathTrieTest, AccumulatesRepeatedInsertsForSameGraph) {
  PathTrie trie(/*store_counts=*/true);
  trie.Insert(MakePathKey({4}), 3, 1);
  trie.Insert(MakePathKey({4}), 3, 2);
  const std::vector<uint32_t>* counts = nullptr;
  const auto* graphs = trie.Find(MakePathKey({4}), &counts);
  ASSERT_NE(graphs, nullptr);
  EXPECT_EQ(graphs->size(), 1u);
  EXPECT_EQ((*counts)[0], 3u);
}

TEST(PathTrieTest, PresenceOnlyMode) {
  PathTrie trie(/*store_counts=*/false);
  trie.Insert(MakePathKey({1, 2}), 0, 7);
  const std::vector<uint32_t>* counts = nullptr;
  const auto* graphs = trie.Find(MakePathKey({1, 2}), &counts);
  ASSERT_NE(graphs, nullptr);
  EXPECT_EQ(counts, nullptr);
  EXPECT_EQ(graphs->size(), 1u);
}

TEST(PathTrieTest, MemoryGrowsWithContent) {
  PathTrie small(true);
  small.Insert(MakePathKey({0}), 0, 1);
  PathTrie big(true);
  for (Label l = 0; l < 100; ++l) big.Insert(MakePathKey({l, l + 1}), 0, 1);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(big.NumNodes(), small.NumNodes());
}

}  // namespace
}  // namespace sgq

#include "gen/graph_gen.h"
#include "index/local_path_trie.h"
#include "util/rng.h"

namespace sgq {
namespace {

// The trie-based build-path enumerator must produce exactly the same
// feature multiset as the string-keyed reference enumerator.
TEST(LocalPathTrieTest, MatchesStringEnumerator) {
  Rng rng(123);
  std::vector<Label> labels = {0, 1, 2, 3};
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = GenerateRandomGraph(
        10 + static_cast<uint32_t>(rng.NextBounded(20)),
        1.0 + rng.NextDouble() * 4.0, labels, &rng);
    PathFeatureCounts expected;
    DeadlineChecker unlimited1{Deadline::Infinite()};
    ASSERT_TRUE(EnumeratePathFeatures(g, 4, &unlimited1, &expected));

    LocalPathTrie local;
    DeadlineChecker unlimited2{Deadline::Infinite()};
    ASSERT_TRUE(EnumeratePathsIntoTrie(g, 4, &unlimited2, &local));
    PathTrie global(/*store_counts=*/true);
    MergeLocalTrie(local, /*graph=*/0, &global);

    size_t found = 0;
    for (const auto& [key, count] : expected) {
      const std::vector<uint32_t>* counts = nullptr;
      const auto* graphs = global.Find(key, &counts);
      ASSERT_NE(graphs, nullptr) << "missing feature, trial " << trial;
      ASSERT_EQ(graphs->size(), 1u);
      EXPECT_EQ((*counts)[0], count) << "trial " << trial;
      ++found;
    }
    // No extra features: count trie postings.
    std::function<size_t(const LocalPathTrie&, uint32_t)> count_nodes =
        [&](const LocalPathTrie& t, uint32_t n) {
          size_t c = t.node(n).count > 0 ? 1 : 0;
          for (const auto& [label, child] : t.node(n).children) {
            c += count_nodes(t, child);
          }
          return c;
        };
    EXPECT_EQ(count_nodes(local, local.root()), expected.size())
        << "trial " << trial;
  }
}

TEST(LocalPathTrieTest, DeadlineAborts) {
  GraphBuilder b;
  for (int i = 0; i < 40; ++i) b.AddVertex(0);
  for (VertexId u = 0; u < 40; ++u) {
    for (VertexId v = u + 1; v < 40; ++v) b.AddEdge(u, v);
  }
  const Graph g = b.Build();
  LocalPathTrie out;
  DeadlineChecker tight{Deadline::AfterSeconds(1e-4)};
  EXPECT_FALSE(EnumeratePathsIntoTrie(g, 6, &tight, &out));
}

}  // namespace
}  // namespace sgq
