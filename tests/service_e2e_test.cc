// End-to-end acceptance test for the service subsystem: a real
// SocketServer on a Unix socket, raw-socket clients speaking the line
// protocol, ≥100 queries over ≥4 concurrent connections, a deliberate
// TIMEOUT, a deterministic OVERLOADED, STATS totals that must match the
// client-side counts exactly, a graceful shutdown that drains, the cache
// section of STATS with CACHE CLEAR over the wire, and RELOAD invalidation
// under concurrent query load. Runs under the `tsan` ctest label.
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "gen/graph_gen.h"
#include "graph/graph_io.h"
#include "service/protocol.h"
#include "service/server.h"
#include "tests/test_util.h"
#include "util/socket.h"

namespace sgq {
namespace {

GraphDatabase SmallDb(uint32_t num_graphs = 40) {
  SyntheticParams params;
  params.num_graphs = num_graphs;
  params.vertices_per_graph = 16;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 21;
  return GenerateSyntheticDatabase(params);
}

// K_{n,n}, single label. Together with an odd-cycle query this is a
// deterministic deadline-bound workload: the cycle cannot embed (parity),
// but the search space is far too large to exhaust, so Query() runs until
// its deadline — exactly what the TIMEOUT / OVERLOADED phases need.
Graph CompleteBipartite(uint32_t n) {
  GraphBuilder builder;
  for (uint32_t i = 0; i < 2 * n; ++i) builder.AddVertex(0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) builder.AddEdge(i, n + j);
  }
  return builder.Build();
}

GraphDatabase DbWithHardInstance() {
  GraphDatabase db;
  db.Add(CompleteBipartite(12));
  const GraphDatabase rest = SmallDb();
  for (const Graph& g : rest.graphs()) db.Add(g);
  return db;
}

std::string UniqueSocketPath(const char* tag) {
  return "/tmp/sgq_e2e_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// Minimal blocking line-protocol client over a Unix socket.
class Client {
 public:
  bool Connect(const std::string& path) {
    std::string error;
    fd_ = ConnectUnix(path, &error);
    return fd_.valid();
  }

  bool Send(const std::string& bytes) { return WriteAll(fd_.get(), bytes); }

  bool RecvLine(std::string* line) {
    line->clear();
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[512];
      const ssize_t n = ReadSome(fd_.get(), chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Sends one inline QUERY and returns the response line ("" on drop).
  std::string Query(const std::string& payload, double timeout_seconds = 0) {
    std::string header = "QUERY ";
    header += std::to_string(payload.size());
    if (timeout_seconds > 0) {
      header += ' ';
      header += std::to_string(timeout_seconds);
    }
    header += '\n';
    std::string line;
    if (!Send(header) || !Send(payload) || !RecvLine(&line)) return "";
    return line;
  }

  // Sends one inline STREAM query, consumes the incremental IDS chunk
  // lines into `ids`, and returns the terminal OK/TIMEOUT line ("" on a
  // drop or a malformed chunk).
  std::string StreamQuery(const std::string& payload, uint64_t limit,
                          std::vector<GraphId>* ids, bool also_ids = false) {
    std::string header = "QUERY ";
    header += std::to_string(payload.size());
    if (limit > 0) {
      header += " LIMIT ";
      header += std::to_string(limit);
    }
    if (also_ids) header += " IDS";
    header += " STREAM\n";
    ids->clear();
    if (!Send(header) || !Send(payload)) return "";
    std::string line;
    for (;;) {
      if (!RecvLine(&line)) return "";
      if (line.rfind("IDS", 0) != 0) return line;
      if (!ParseIdsChunk(line, ids)) return "";
    }
  }

 private:
  UniqueFd fd_;
  std::string buffer_;
};

uint64_t ExtractUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

ServiceStatsSnapshot StatsOverWire(const std::string& socket_path,
                                   std::string* raw_json) {
  Client client;
  EXPECT_TRUE(client.Connect(socket_path));
  EXPECT_TRUE(client.Send("STATS\n"));
  std::string line;
  EXPECT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line.rfind("OK {", 0), 0u) << line;
  *raw_json = line.substr(3);
  ServiceStatsSnapshot stats;
  stats.received = ExtractUint(*raw_json, "received");
  stats.admitted = ExtractUint(*raw_json, "admitted");
  stats.rejected_overloaded = ExtractUint(*raw_json, "rejected_overloaded");
  stats.completed_ok = ExtractUint(*raw_json, "completed_ok");
  stats.completed_timeout = ExtractUint(*raw_json, "completed_timeout");
  stats.bad_requests = ExtractUint(*raw_json, "bad_requests");
  stats.queue_depth = ExtractUint(*raw_json, "queue_depth");
  stats.in_flight = ExtractUint(*raw_json, "in_flight");
  return stats;
}

TEST(ServiceE2eTest, ServeQueryStatsShutdownOverUnixSocket) {
  const std::string socket_path = UniqueSocketPath("basic");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  ServiceConfig service_config;
  service_config.engine_name = "CFQL";
  service_config.workers = 2;
  service_config.queue_capacity = 8;

  SocketServer server(server_config, service_config);
  std::string error;
  ASSERT_TRUE(server.Start(SmallDb(), &error)) << error;

  const GraphDatabase db = SmallDb();
  const std::string payload = SerializeGraph(db.graph(0), 0);

  Client client;
  ASSERT_TRUE(client.Connect(socket_path));

  // Inline query: graph 0 is a subgraph of itself, so >= 1 answer.
  const std::string response = client.Query(payload);
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find("\"num_answers\":"), std::string::npos);

  // @file query: same graph via a file reference.
  const std::string query_file =
      "/tmp/sgq_e2e_q_" + std::to_string(::getpid()) + ".txt";
  { std::ofstream(query_file) << payload; }
  std::string line;
  ASSERT_TRUE(client.Send("QUERY @" + query_file + "\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
  ::unlink(query_file.c_str());

  // A protocol error gets BAD_REQUEST, closes that connection only, and
  // shows up in the stats.
  Client hostile;
  ASSERT_TRUE(hostile.Connect(socket_path));
  ASSERT_TRUE(hostile.Send("FROBNICATE\n"));
  ASSERT_TRUE(hostile.RecvLine(&line));
  EXPECT_EQ(line.rfind("BAD_REQUEST", 0), 0u) << line;

  std::string raw_json;
  const ServiceStatsSnapshot stats = StatsOverWire(socket_path, &raw_json);
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.completed_ok, 2u);
  EXPECT_EQ(stats.bad_requests, 1u);

  // SHUTDOWN over the wire: BYE, then the server drains and the socket
  // file disappears.
  ASSERT_TRUE(client.Send("SHUTDOWN\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "BYE");
  server.Wait();
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
}

TEST(ServiceE2eTest, FloodWithDeliberateTimeoutAndOverload) {
  const std::string socket_path = UniqueSocketPath("flood");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  ServiceConfig service_config;
  service_config.engine_name = "CFQL";
  service_config.workers = 2;
  service_config.queue_capacity = 2;

  SocketServer server(server_config, service_config);
  std::string error;
  ASSERT_TRUE(server.Start(DbWithHardInstance(), &error)) << error;

  const std::string slow_payload =
      SerializeGraph(sgq::testing::MakeCycle({0, 0, 0, 0, 0, 0, 0, 0, 0}), 0);
  const GraphDatabase fast_queries = SmallDb();

  // Client-side ground truth, compared against STATS at the end.
  std::atomic<uint64_t> ok{0}, timeout{0}, overloaded{0}, dropped{0};
  const auto count = [&](const std::string& line) {
    if (line.rfind("OK ", 0) == 0) {
      ++ok;
    } else if (line.rfind("TIMEOUT ", 0) == 0) {
      ++timeout;
    } else if (line.rfind("OVERLOADED", 0) == 0) {
      ++overloaded;
    } else {
      ++dropped;
      ADD_FAILURE() << "unexpected response: '" << line << "'";
    }
  };

  // Phase A — deliberate TIMEOUT: the bipartite trap bounded to 0.3s.
  {
    Client client;
    ASSERT_TRUE(client.Connect(socket_path));
    const std::string line = client.Query(slow_payload, 0.3);
    EXPECT_EQ(line.rfind("TIMEOUT ", 0), 0u) << line;
    count(line);
  }

  // Phase B — deterministic OVERLOADED: occupy both workers with slow
  // queries, fill both queue slots with two more, then a fifth request
  // must bounce at admission.
  {
    std::vector<std::thread> busy;
    for (int i = 0; i < 2; ++i) {
      busy.emplace_back([&] {
        Client client;
        ASSERT_TRUE(client.Connect(socket_path));
        count(client.Query(slow_payload, 1.5));
      });
    }
    std::string raw_json;
    while (StatsOverWire(socket_path, &raw_json).in_flight < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::vector<std::thread> queued;
    for (int i = 0; i < 2; ++i) {
      queued.emplace_back([&] {
        Client client;
        ASSERT_TRUE(client.Connect(socket_path));
        // Expires in the queue while both workers grind on 1.5s queries;
        // the worker cancels it at pop without touching the database.
        count(client.Query(slow_payload, 1.0));
      });
    }
    while (StatsOverWire(socket_path, &raw_json).queue_depth < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    Client client;
    ASSERT_TRUE(client.Connect(socket_path));
    const std::string line =
        client.Query(SerializeGraph(fast_queries.graph(0), 0));
    // The rejection may carry a backoff hint ("OVERLOADED retry_after_ms=N")
    // once the server has a latency estimate, so match the prefix only.
    EXPECT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;
    count(line);

    for (std::thread& t : busy) t.join();
    for (std::thread& t : queued) t.join();
  }
  EXPECT_GE(timeout.load(), 5u);  // phase A + all four slow queries

  // Let phase B fully settle before the flood.
  std::string raw_json;
  for (;;) {
    const ServiceStatsSnapshot s = StatsOverWire(socket_path, &raw_json);
    if (s.in_flight == 0 && s.queue_depth == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Phase C — the flood: 4 connections x 30 fast queries each. A client
  // that is bounced by backpressure retries, like a real one would: with
  // only 2 workers + 2 queue slots, a request can arrive in the window
  // where a worker has finished one query but not yet popped the next,
  // so transient OVERLOADED is legitimate here. Every response is still
  // counted, so the books below must balance regardless.
  std::vector<std::thread> flood;
  for (int c = 0; c < 4; ++c) {
    flood.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect(socket_path));
      for (int i = 0; i < 30; ++i) {
        const GraphId id = static_cast<GraphId>((c * 30 + i) %
                                                fast_queries.size());
        const std::string payload = SerializeGraph(fast_queries.graph(id), id);
        for (;;) {
          const std::string line = client.Query(payload);
          count(line);
          if (line.rfind("OK ", 0) == 0) break;
          ASSERT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }
  for (std::thread& t : flood) t.join();

  // The books must balance: STATS totals == client-side counts.
  const uint64_t sent = ok + timeout + overloaded + dropped;
  EXPECT_EQ(ok.load(), 120u);      // every flood query eventually succeeded
  EXPECT_EQ(timeout.load(), 5u);   // phase A + the four phase-B slow queries
  EXPECT_EQ(dropped.load(), 0u);
  EXPECT_GE(ok.load(), 100u);
  EXPECT_GE(timeout.load(), 1u);
  EXPECT_GE(overloaded.load(), 1u);

  const ServiceStatsSnapshot wire = StatsOverWire(socket_path, &raw_json);
  EXPECT_EQ(wire.received, sent);
  EXPECT_EQ(wire.completed_ok, ok.load());
  EXPECT_EQ(wire.completed_timeout, timeout.load());
  EXPECT_EQ(wire.rejected_overloaded, overloaded.load());
  EXPECT_EQ(wire.admitted, ok.load() + timeout.load());
  EXPECT_EQ(wire.bad_requests, 0u);

  // Graceful shutdown via signal-style RequestStop (what SIGTERM does in
  // sgq_server): drains and unlinks the socket. The in-process snapshot
  // must agree with what the wire reported.
  server.RequestStop();
  server.Wait();
  const ServiceStatsSnapshot final_stats = server.Stats();
  EXPECT_EQ(final_stats.received, wire.received);
  EXPECT_EQ(final_stats.completed_ok, wire.completed_ok);
  EXPECT_EQ(final_stats.completed_timeout, wire.completed_timeout);
  EXPECT_EQ(final_stats.rejected_overloaded, wire.rejected_overloaded);
  EXPECT_EQ(final_stats.in_flight, 0u);
  EXPECT_EQ(final_stats.queue_depth, 0u);
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
}

// Number of answers in an "OK <n> <json>" / "TIMEOUT <n> <json>" response;
// ~0ull for anything else (OVERLOADED during a reload drain).
uint64_t AnswersInResponse(const std::string& line) {
  const size_t space = line.find(' ');
  if (space == std::string::npos) return ~0ull;
  if (line.rfind("OK ", 0) != 0) return ~0ull;
  return std::strtoull(line.c_str() + space + 1, nullptr, 10);
}

TEST(ServiceE2eTest, StatsCacheSectionAndCacheClearOverWire) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  const std::string socket_path = UniqueSocketPath("cache");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_capacity = 8;

  SocketServer server(server_config, service_config);
  std::string error;
  ASSERT_TRUE(server.Start(SmallDb(), &error)) << error;

  const std::string payload = SerializeGraph(SmallDb().graph(1), 0);
  Client client;
  ASSERT_TRUE(client.Connect(socket_path));
  const std::string first = client.Query(payload);
  const std::string second = client.Query(payload);  // cache hit
  EXPECT_EQ(first, second);  // byte-identical response line

  std::string raw_json;
  StatsOverWire(socket_path, &raw_json);
  EXPECT_NE(raw_json.find("\"cache\":{"), std::string::npos) << raw_json;
  EXPECT_EQ(ExtractUint(raw_json, "hits"), 1u);
  EXPECT_EQ(ExtractUint(raw_json, "engine_executions"), 1u);
  EXPECT_EQ(ExtractUint(raw_json, "entries"), 1u);

  // CACHE CLEAR over the wire empties the cache; the next identical query
  // re-executes and produces the same bytes again.
  std::string line;
  ASSERT_TRUE(client.Send("CACHE CLEAR\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK cache cleared");
  StatsOverWire(socket_path, &raw_json);
  EXPECT_EQ(ExtractUint(raw_json, "entries"), 0u);
  // The re-execution reports fresh timings, but the answers are identical.
  const std::string third = client.Query(payload);
  EXPECT_EQ(AnswersInResponse(third), AnswersInResponse(first));
  StatsOverWire(socket_path, &raw_json);
  EXPECT_EQ(ExtractUint(raw_json, "engine_executions"), 2u);

  server.RequestStop();
  server.Wait();
}

TEST(ServiceE2eTest, ReloadInvalidatesCacheUnderConcurrentLoad) {
  // db2 = db1 plus a pentagon whose label is absent from db1. Clients
  // hammer the pentagon query while the database is swapped underneath
  // them via RELOAD @file. The invariant: per connection, the answer
  // count is monotone 0 -> 1 — a cached pre-swap "no answers" must never
  // be served once any answer from the new database has been seen, and
  // in-flight old-epoch queries never surface post-swap results early.
  const Graph pentagon = sgq::testing::MakeCycle({7, 7, 7, 7, 7});
  GraphDatabase db1 = SmallDb(10);
  GraphDatabase db2 = SmallDb(10);
  db2.Add(pentagon);
  const std::string db1_path =
      "/tmp/sgq_e2e_db1_" + std::to_string(::getpid()) + ".txt";
  const std::string db2_path =
      "/tmp/sgq_e2e_db2_" + std::to_string(::getpid()) + ".txt";
  std::string error;
  ASSERT_TRUE(SaveDatabase(db1, db1_path, &error)) << error;
  ASSERT_TRUE(SaveDatabase(db2, db2_path, &error)) << error;

  const std::string socket_path = UniqueSocketPath("reload");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  server_config.db_path = db1_path;
  ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_capacity = 16;

  SocketServer server(server_config, service_config);
  ASSERT_TRUE(server.Start(SmallDb(10), &error)) << error;
  // Note: Start() got an in-memory copy of db1; the RELOAD below reads
  // db2 from disk, which is how sgq_server swaps databases too.

  const std::string pentagon_payload = SerializeGraph(pentagon, 0);
  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_done{0};
  std::vector<std::thread> clients;
  std::vector<bool> monotone(kClients, true);
  std::vector<uint64_t> last_seen(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect(socket_path));
      // After `stop`, keep going (bounded) until this connection has seen
      // the post-reload database, so the final assertions are not timing-
      // dependent.
      int post_stop_attempts = 0;
      while (!stop.load(std::memory_order_acquire) ||
             (last_seen[c] == 0 && ++post_stop_attempts < 500)) {
        const std::string line = client.Query(pentagon_payload);
        const uint64_t answers = AnswersInResponse(line);
        if (answers == ~0ull) {
          // OVERLOADED while the reload drains; back off and retry.
          EXPECT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        if (answers < last_seen[c]) monotone[c] = false;
        last_seen[c] = answers;
        ++queries_done;
      }
    });
  }

  // Let the cache warm up with pre-swap answers, then swap.
  while (queries_done.load() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Client admin;
  ASSERT_TRUE(admin.Connect(socket_path));
  std::string line;
  ASSERT_TRUE(admin.Send("RELOAD @" + db2_path + "\n"));
  ASSERT_TRUE(admin.RecvLine(&line));
  EXPECT_EQ(line, "OK reloaded 11 graphs") << line;

  // After the reload acknowledges, a fresh query must see the pentagon —
  // the pre-swap cached "0 answers" is unreachable (epoch moved).
  const std::string after = admin.Query(pentagon_payload);
  EXPECT_EQ(AnswersInResponse(after), 1u) << after;

  // Keep the flood going briefly on the new database, then stop.
  const uint64_t at_reload = queries_done.load();
  while (queries_done.load() < at_reload + 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(monotone[c]) << "connection " << c
                             << " saw answers regress after the reload";
    EXPECT_EQ(last_seen[c], 1u) << "connection " << c
                                << " never saw the post-reload database";
  }

  std::string raw_json;
  StatsOverWire(socket_path, &raw_json);
  if (CacheEnabledByEnv()) {
    EXPECT_EQ(ExtractUint(raw_json, "epoch"), 1u);
  }
  EXPECT_EQ(ExtractUint(raw_json, "reloads"), 1u);

  server.RequestStop();
  server.Wait();
  ::unlink(db1_path.c_str());
  ::unlink(db2_path.c_str());
}

// The tentpole invariant of the streaming pipeline: a STREAM response —
// at any LIMIT, on any engine, serial or parallel — is byte-for-byte the
// prefix of the batch IDS answer list, and the terminal count equals the
// number of ids streamed.
TEST(ServiceE2eTest, StreamedResultsAreBitIdenticalPrefixOfBatch) {
  const char* engines[] = {"CFQL", "VF2-scan", "CFQL-parallel",
                           "CFQL-parallel-intra"};
  const GraphDatabase db = SmallDb();
  // Single labeled edge: embeds in most of the 40 synthetic graphs, so
  // the streamed sequence is long enough to cross chunk boundaries.
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddEdge(0, 1);
  const std::string payload = SerializeGraph(builder.Build(), 0);

  for (const char* engine : engines) {
    SCOPED_TRACE(engine);
    const std::string socket_path = UniqueSocketPath("stream");
    ServerConfig server_config;
    server_config.unix_path = socket_path;
    ServiceConfig service_config;
    service_config.engine_name = engine;
    service_config.workers = 2;
    service_config.queue_capacity = 8;

    SocketServer server(server_config, service_config);
    std::string error;
    ASSERT_TRUE(server.Start(SmallDb(), &error)) << error;

    Client client;
    ASSERT_TRUE(client.Connect(socket_path));

    // Batch ground truth with the IDS trailer.
    std::string header = "QUERY " + std::to_string(payload.size()) + " IDS\n";
    std::string line, ids_line;
    ASSERT_TRUE(client.Send(header) && client.Send(payload));
    ASSERT_TRUE(client.RecvLine(&line));
    ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
    const ResponseHead batch_head = ParseResponseHead(line);
    ASSERT_TRUE(batch_head.has_count);
    ASSERT_TRUE(client.RecvLine(&ids_line));
    std::vector<GraphId> batch_ids;
    ASSERT_TRUE(ParseIdsLine(ids_line, batch_head.num_answers, &batch_ids));
    ASSERT_GE(batch_ids.size(), 2u) << "query too selective for this test";

    // Full stream == full batch list, and the terminal count agrees.
    std::vector<GraphId> streamed;
    line = client.StreamQuery(payload, /*limit=*/0, &streamed);
    ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
    EXPECT_EQ(streamed, batch_ids);
    EXPECT_EQ(ParseResponseHead(line).num_answers, streamed.size());

    // Every LIMIT k streams exactly the first k batch ids.
    for (const uint64_t k : {uint64_t{1}, uint64_t{2},
                             static_cast<uint64_t>(batch_ids.size() + 5)}) {
      line = client.StreamQuery(payload, k, &streamed);
      ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
      const size_t expect =
          std::min<size_t>(static_cast<size_t>(k), batch_ids.size());
      ASSERT_EQ(streamed.size(), expect);
      EXPECT_TRUE(std::equal(streamed.begin(), streamed.end(),
                             batch_ids.begin()));
      EXPECT_EQ(ParseResponseHead(line).num_answers, streamed.size());
    }

    // STREAM + IDS must not emit the batch trailer after the terminal
    // line: the very next line on the connection is the STATS reply.
    line = client.StreamQuery(payload, 0, &streamed, /*also_ids=*/true);
    ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
    EXPECT_EQ(streamed, batch_ids);
    ASSERT_TRUE(client.Send("STATS\n"));
    ASSERT_TRUE(client.RecvLine(&line));
    EXPECT_EQ(line.rfind("OK {", 0), 0u) << line;

    server.RequestStop();
    server.Wait();
  }
}

// Shutdown must not strand a connection that is mid-payload: the
// connection closes once the client is idle, and admitted work still
// completes.
TEST(ServiceE2eTest, ShutdownWithIdleConnectionsDoesNotHang) {
  const std::string socket_path = UniqueSocketPath("idle");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  ServiceConfig service_config;
  service_config.workers = 1;
  service_config.queue_capacity = 4;

  SocketServer server(server_config, service_config);
  std::string error;
  ASSERT_TRUE(server.Start(SmallDb(), &error)) << error;

  // Three connections sit idle; one holds a truncated payload forever.
  std::vector<std::unique_ptr<Client>> idle;
  for (int i = 0; i < 3; ++i) {
    idle.push_back(std::make_unique<Client>());
    ASSERT_TRUE(idle.back()->Connect(socket_path));
  }
  ASSERT_TRUE(idle[2]->Send("QUERY 100\npartial"));

  server.RequestStop();
  server.Wait();  // must return despite the idle/truncated connections
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
}

// The full mutation verb surface over the wire: inline and @file ADD,
// forced ids, REMOVE, the error taxonomy (OVERLOADED for live-data
// failures, BAD_REQUEST for malformed payloads/grammar), and the STATS
// "update" section — all on one server, with queries observing each
// published version.
TEST(ServiceE2eTest, LiveMutationsOverTheWire) {
  const std::string socket_path = UniqueSocketPath("mutate");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_capacity = 16;

  SocketServer server(server_config, service_config);
  std::string error;
  ASSERT_TRUE(server.Start(SmallDb(), &error)) << error;  // gids 0..39

  const Graph pentagon = sgq::testing::MakeCycle({7, 7, 7, 7, 7});
  const std::string graph_text = SerializeGraph(pentagon, 0);
  const std::string query_payload = SerializeGraph(pentagon, 0);
  const std::string query_header =
      "QUERY " + std::to_string(query_payload.size()) + " IDS\n";

  Client client;
  ASSERT_TRUE(client.Connect(socket_path));
  std::string line;

  // Label 7 is absent from SmallDb: the pentagon query starts empty.
  ASSERT_TRUE(client.Send(query_header) && client.Send(query_payload));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(AnswersInResponse(line), 0u) << line;
  ASSERT_TRUE(client.RecvLine(&line));  // empty IDS trailer

  // Inline ADD: the first free global id after a 40-graph seed is 40.
  ASSERT_TRUE(client.Send("ADD GRAPH " + std::to_string(graph_text.size()) +
                          "\n") &&
              client.Send(graph_text));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK added 40") << line;

  ASSERT_TRUE(client.Send(query_header) && client.Send(query_payload));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(AnswersInResponse(line), 1u) << line;
  std::string ids_line;
  ASSERT_TRUE(client.RecvLine(&ids_line));
  std::vector<GraphId> ids;
  ASSERT_TRUE(ParseIdsLine(ids_line, 1, &ids));
  EXPECT_EQ(ids, std::vector<GraphId>{40});

  // @file ADD with a forced id: a gap above next_global_id is legal.
  const std::string file_path =
      "/tmp/sgq_e2e_add_" + std::to_string(::getpid()) + ".txt";
  {
    std::ofstream out(file_path);
    out << graph_text;
  }
  ASSERT_TRUE(client.Send("ADD GRAPH @" + file_path + " ID 50\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK added 50") << line;

  ASSERT_TRUE(client.Send(query_header) && client.Send(query_payload));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(AnswersInResponse(line), 2u) << line;
  ASSERT_TRUE(client.RecvLine(&ids_line));
  ASSERT_TRUE(ParseIdsLine(ids_line, 2, &ids));
  EXPECT_EQ(ids, (std::vector<GraphId>{40, 50}));

  // REMOVE keeps the surviving global id stable.
  ASSERT_TRUE(client.Send("REMOVE GRAPH 40\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line, "OK removed 40") << line;

  ASSERT_TRUE(client.Send(query_header) && client.Send(query_payload));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(AnswersInResponse(line), 1u) << line;
  ASSERT_TRUE(client.RecvLine(&ids_line));
  ASSERT_TRUE(ParseIdsLine(ids_line, 1, &ids));
  EXPECT_EQ(ids, std::vector<GraphId>{50});

  // A dead id is a live-data failure (OVERLOADED), not a grammar error:
  // the connection stays usable.
  ASSERT_TRUE(client.Send("REMOVE GRAPH 40\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line.rfind("OVERLOADED", 0), 0u) << line;

  // An unparseable payload is BAD_REQUEST, also non-terminal.
  const std::string junk = "this is not a graph\n";
  ASSERT_TRUE(client.Send("ADD GRAPH " + std::to_string(junk.size()) + "\n") &&
              client.Send(junk));
  ASSERT_TRUE(client.RecvLine(&line));
  EXPECT_EQ(line.rfind("BAD_REQUEST", 0), 0u) << line;

  // The STATS update section accounts for everything above.
  ASSERT_TRUE(client.Send("STATS\n"));
  ASSERT_TRUE(client.RecvLine(&line));
  ASSERT_EQ(line.rfind("OK {", 0), 0u) << line;
  EXPECT_NE(line.find("\"update\":{"), std::string::npos) << line;
  EXPECT_EQ(ExtractUint(line, "mutations_add"), 2u);
  EXPECT_EQ(ExtractUint(line, "mutations_remove"), 1u);
  EXPECT_EQ(ExtractUint(line, "mutation_failures"), 1u);
  EXPECT_EQ(ExtractUint(line, "db_epoch"), 4u);  // publish + 3 mutations
  EXPECT_EQ(ExtractUint(line, "next_global_id"), 51u);

  // Mutation grammar errors terminate the connection like any other
  // codec error; probe with a throwaway client.
  {
    Client bad;
    ASSERT_TRUE(bad.Connect(socket_path));
    ASSERT_TRUE(bad.Send("ADD GRAPH\n"));
    ASSERT_TRUE(bad.RecvLine(&line));
    EXPECT_EQ(line.rfind("BAD_REQUEST", 0), 0u) << line;
  }

  ::unlink(file_path.c_str());
  server.RequestStop();
  server.Wait();
}

// Queries flooding one connection while another connection cycles
// ADD/REMOVE of a single pentagon: snapshot isolation means every
// response sees either zero or one pentagon — never a torn state — and
// the server reports zero quiesce (queries ran during mutations).
TEST(ServiceE2eTest, MutationStreamInterleavedWithWireQueries) {
  const std::string socket_path = UniqueSocketPath("interleave");
  ServerConfig server_config;
  server_config.unix_path = socket_path;
  ServiceConfig service_config;
  service_config.workers = 3;
  service_config.queue_capacity = 32;

  SocketServer server(server_config, service_config);
  std::string error;
  ASSERT_TRUE(server.Start(SmallDb(), &error)) << error;

  const std::string graph_text =
      SerializeGraph(sgq::testing::MakeCycle({7, 7, 7, 7, 7}), 0);
  const std::string query_header =
      "QUERY " + std::to_string(graph_text.size()) + "\n";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<bool> reader_failed{false};
  std::thread reader([&] {
    Client c;
    if (!c.Connect(socket_path)) {
      reader_failed.store(true);
      return;
    }
    while (!stop.load()) {
      const std::string line = c.Query(graph_text);
      const uint64_t n = AnswersInResponse(line);
      if (n == ~0ull || n > 1) {  // torn state or error: fail loudly
        reader_failed.store(true);
        return;
      }
      queries_ok.fetch_add(1);
    }
  });

  Client mutator;
  ASSERT_TRUE(mutator.Connect(socket_path));
  const int kCycles = 20;
  for (int i = 0; i < kCycles; ++i) {
    std::string line;
    ASSERT_TRUE(mutator.Send("ADD GRAPH " +
                             std::to_string(graph_text.size()) + "\n") &&
                mutator.Send(graph_text));
    ASSERT_TRUE(mutator.RecvLine(&line));
    GraphId gid = 0;
    ASSERT_TRUE(ParseAddedResponse(line, &gid)) << line;
    ASSERT_TRUE(mutator.Send("REMOVE GRAPH " + std::to_string(gid) + "\n"));
    ASSERT_TRUE(mutator.RecvLine(&line));
    GraphId removed = 0;
    ASSERT_TRUE(ParseRemovedResponse(line, &removed)) << line;
    ASSERT_EQ(removed, gid);
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(reader_failed.load());
  EXPECT_GT(queries_ok.load(), 0u);

  std::string raw;
  const ServiceStatsSnapshot stats = StatsOverWire(socket_path, &raw);
  (void)stats;
  EXPECT_EQ(ExtractUint(raw, "mutations_add"),
            static_cast<uint64_t>(kCycles));
  EXPECT_EQ(ExtractUint(raw, "mutations_remove"),
            static_cast<uint64_t>(kCycles));
  EXPECT_EQ(ExtractUint(raw, "mutation_failures"), 0u);

  server.RequestStop();
  server.Wait();
}

}  // namespace
}  // namespace sgq
