// Index persistence: built indexes round-trip through SaveTo/LoadFrom with
// identical filtering behavior; corrupt/truncated inputs are rejected.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "index/ct_index.h"
#include "index/ggsx_index.h"
#include "index/graphgrep_index.h"
#include "index/mined_path_index.h"
#include "index/grapes_index.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sgq {
namespace {

std::unique_ptr<GraphIndex> MakeIndex(const std::string& name) {
  if (name == "Grapes") return std::make_unique<GrapesIndex>();
  if (name == "GGSX") return std::make_unique<GgsxIndex>();
  if (name == "CT-Index") return std::make_unique<CtIndex>();
  if (name == "GraphGrep") return std::make_unique<GraphGrepIndex>();
  if (name == "MinedPath") return std::make_unique<MinedPathIndex>();
  SGQ_LOG(Fatal) << "unknown index " << name;
  return nullptr;
}

GraphDatabase MakeDb() {
  SyntheticParams params;
  params.num_graphs = 15;
  params.vertices_per_graph = 18;
  params.degree = 2.5;
  params.num_labels = 4;
  params.seed = 77;
  return GenerateSyntheticDatabase(params);
}

class IndexPersistenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IndexPersistenceTest, RoundTripPreservesFiltering) {
  const GraphDatabase db = MakeDb();
  auto original = MakeIndex(GetParam());
  ASSERT_TRUE(original->Build(db, Deadline::Infinite()));

  std::stringstream buffer;
  ASSERT_TRUE(original->SaveTo(buffer));

  auto loaded = MakeIndex(GetParam());
  ASSERT_TRUE(loaded->LoadFrom(buffer));
  EXPECT_TRUE(loaded->built());

  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 4 + trial % 4, &rng, &q)) {
      continue;
    }
    EXPECT_EQ(original->FilterCandidates(q), loaded->FilterCandidates(q))
        << GetParam() << " trial " << trial;
  }
}

TEST_P(IndexPersistenceTest, UnbuiltIndexRefusesToSave) {
  auto index = MakeIndex(GetParam());
  std::stringstream buffer;
  EXPECT_FALSE(index->SaveTo(buffer));
}

TEST_P(IndexPersistenceTest, RejectsGarbageAndTruncation) {
  auto index = MakeIndex(GetParam());
  {
    std::stringstream garbage("this is not an index file at all");
    EXPECT_FALSE(index->LoadFrom(garbage));
    EXPECT_FALSE(index->built());
  }
  {
    std::stringstream empty;
    EXPECT_FALSE(index->LoadFrom(empty));
  }
  // Truncated valid prefix.
  const GraphDatabase db = MakeDb();
  auto original = MakeIndex(GetParam());
  ASSERT_TRUE(original->Build(db, Deadline::Infinite()));
  std::stringstream buffer;
  ASSERT_TRUE(original->SaveTo(buffer));
  const std::string full = buffer.str();
  for (size_t cut : {size_t{1}, size_t{4}, full.size() / 2,
                     full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    auto fresh = MakeIndex(GetParam());
    EXPECT_FALSE(fresh->LoadFrom(truncated)) << "cut at " << cut;
  }
}

TEST_P(IndexPersistenceTest, RejectsWrongFormat) {
  // Each index's file must be rejected by the other index types.
  const GraphDatabase db = MakeDb();
  auto original = MakeIndex(GetParam());
  ASSERT_TRUE(original->Build(db, Deadline::Infinite()));
  std::stringstream buffer;
  ASSERT_TRUE(original->SaveTo(buffer));
  for (const char* other : {"Grapes", "GGSX", "CT-Index"}) {
    if (other == GetParam()) continue;
    std::stringstream copy(buffer.str());
    auto fresh = MakeIndex(other);
    EXPECT_FALSE(fresh->LoadFrom(copy))
        << other << " accepted a " << GetParam() << " file";
  }
}

TEST_P(IndexPersistenceTest, FileRoundTrip) {
  const GraphDatabase db = MakeDb();
  auto original = MakeIndex(GetParam());
  ASSERT_TRUE(original->Build(db, Deadline::Infinite()));
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sgq_index_" + std::to_string(::getpid()) + ".bin"))
          .string();
  std::string error;
  ASSERT_TRUE(original->SaveToFile(path, &error)) << error;
  auto loaded = MakeIndex(GetParam());
  ASSERT_TRUE(loaded->LoadFromFile(path, &error)) << error;
  std::remove(path.c_str());
  EXPECT_FALSE(loaded->LoadFromFile("/nonexistent/dir/x.bin", &error));
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexPersistenceTest,
                         ::testing::Values("Grapes", "GGSX", "CT-Index", "GraphGrep",
                                           "MinedPath"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace sgq
