#include "util/logging.h"

#include <gtest/gtest.h>

namespace sgq {
namespace {

TEST(LoggingTest, CheckPassesSilently) {
  SGQ_CHECK(true);
  SGQ_CHECK_EQ(1, 1);
  SGQ_CHECK_NE(1, 2);
  SGQ_CHECK_LT(1, 2);
  SGQ_CHECK_LE(2, 2);
  SGQ_CHECK_GT(3, 2);
  SGQ_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SGQ_CHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(SGQ_CHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(SGQ_CHECK_LT(5, 2), "5 vs 2");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(SGQ_LOG(Fatal) << "fatal message", "fatal message");
}

TEST(LoggingTest, ThresholdControlsOutput) {
  const LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  // Below-threshold messages must not crash (output suppressed).
  SGQ_LOG(Info) << "suppressed";
  SGQ_LOG(Warning) << "suppressed";
  SetLogThreshold(original);
}

TEST(LoggingTest, CheckBindsTightlyInIfElse) {
  // The macro must not swallow an else branch.
  bool reached_else = false;
  if (false) {
    SGQ_CHECK(true);
  } else {
    reached_else = true;
  }
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace sgq
