// Edge cases of the metrics layer and other small contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/graph_gen.h"
#include "query/stats.h"
#include "tests/test_util.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace sgq {
namespace {

TEST(SummarizeEdgeTest, EmptyInput) {
  const QuerySetSummary s = Summarize({}, 1000);
  EXPECT_EQ(s.num_queries, 0u);
  EXPECT_EQ(s.num_timeouts, 0u);
  EXPECT_DOUBLE_EQ(s.avg_query_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.filtering_precision, 0.0);
}

TEST(SummarizeEdgeTest, AllTimeouts) {
  std::vector<QueryResult> results(3);
  for (auto& r : results) {
    r.stats.timed_out = true;
    r.stats.filtering_ms = 1;
    r.stats.verification_ms = 500;
    r.stats.num_candidates = 10;
    r.stats.num_answers = 1;
  }
  const QuerySetSummary s = Summarize(results, /*timeout_ms=*/600);
  EXPECT_EQ(s.num_timeouts, 3u);
  // Timed-out queries are charged the limit, as the paper does.
  EXPECT_DOUBLE_EQ(s.avg_query_ms, 600.0);
  EXPECT_DOUBLE_EQ(s.filtering_precision, 0.1);
}

TEST(SummarizeEdgeTest, PerSiSkipsZeroCandidateQueries) {
  std::vector<QueryResult> results(2);
  results[0].stats.num_candidates = 0;
  results[0].stats.verification_ms = 0;
  results[1].stats.num_candidates = 5;
  results[1].stats.verification_ms = 10;
  const QuerySetSummary s = Summarize(results, 1000);
  EXPECT_DOUBLE_EQ(s.per_si_test_ms, 1.0);  // (skip + 10/5) / 2
}

TEST(DeadlineEdgeTest, SecondsRemaining) {
  EXPECT_TRUE(std::isinf(Deadline::Infinite().SecondsRemaining()));
  const Deadline d = Deadline::AfterSeconds(100);
  const double remaining = d.SecondsRemaining();
  EXPECT_GT(remaining, 95.0);
  EXPECT_LE(remaining, 100.0);
}

TEST(GraphMemoryTest, GrowsWithSize) {
  Rng rng(1);
  std::vector<Label> labels = {0, 1};
  const Graph small = GenerateRandomGraph(10, 2.0, labels, &rng);
  const Graph big = GenerateRandomGraph(200, 6.0, labels, &rng);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  GraphDatabase db;
  const DatabaseStats s = db.ComputeStats();
  EXPECT_EQ(s.num_graphs, 0u);
  EXPECT_EQ(s.num_distinct_labels, 0u);
  EXPECT_DOUBLE_EQ(s.avg_vertices_per_graph, 0.0);
  EXPECT_EQ(db.MemoryBytes(), 0u);
}

TEST(QueryStatsTest, DefaultsAreZero) {
  QueryStats s;
  EXPECT_DOUBLE_EQ(s.QueryMs(), 0.0);
  EXPECT_FALSE(s.timed_out);
  EXPECT_EQ(s.aux_memory_bytes, 0u);
}

}  // namespace
}  // namespace sgq
