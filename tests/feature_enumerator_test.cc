#include "index/feature_enumerator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

TEST(CanonicalTreeKeyTest, IsomorphicTreesCollapse) {
  // Star with center label 1 and leaves 0, 2 — built with two different
  // vertex numberings.
  const Graph a = MakeGraph({1, 0, 2}, {{0, 1}, {0, 2}});
  const Graph b = MakeGraph({2, 1, 0}, {{1, 0}, {1, 2}});
  const FeatureKey ka = CanonicalTreeKey(a, {0, 1, 2}, {{0, 1}, {0, 2}});
  const FeatureKey kb = CanonicalTreeKey(b, {0, 1, 2}, {{1, 0}, {1, 2}});
  EXPECT_EQ(ka, kb);
}

TEST(CanonicalTreeKeyTest, DistinguishesShape) {
  // Path 0-1-2 vs star with center 1: same labels {0,1,2} with label(center)
  // differing in position.
  const Graph path = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  const Graph star = MakeGraph({1, 0, 2}, {{0, 1}, {0, 2}});
  const FeatureKey kp = CanonicalTreeKey(path, {0, 1, 2}, {{0, 1}, {1, 2}});
  const FeatureKey ks = CanonicalTreeKey(star, {0, 1, 2}, {{0, 1}, {0, 2}});
  // Same canonical tree: path 0-1-2 with center label 1 IS the star with
  // center 1 and leaves 0,2 (a 3-vertex tree is always a path).
  EXPECT_EQ(kp, ks);

  // A real shape difference needs 4 vertices: path vs 3-star, same labels.
  const Graph p4 = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  const Graph s4 = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  const FeatureKey kp4 =
      CanonicalTreeKey(p4, {0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  const FeatureKey ks4 =
      CanonicalTreeKey(s4, {0, 1, 2, 3}, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_NE(kp4, ks4);
}

TEST(CanonicalTreeKeyTest, DistinguishesLabels) {
  const Graph a = MakeGraph({0, 1}, {{0, 1}});
  const Graph b = MakeGraph({0, 2}, {{0, 1}});
  EXPECT_NE(CanonicalTreeKey(a, {0, 1}, {{0, 1}}),
            CanonicalTreeKey(b, {0, 1}, {{0, 1}}));
}

TEST(CanonicalCycleKeyTest, RotationAndReflectionInvariant) {
  const Graph g = MakeCycle({0, 1, 2, 3});
  const FeatureKey base = CanonicalCycleKey(g, {0, 1, 2, 3});
  EXPECT_EQ(base, CanonicalCycleKey(g, {1, 2, 3, 0}));
  EXPECT_EQ(base, CanonicalCycleKey(g, {3, 2, 1, 0}));
  EXPECT_EQ(base, CanonicalCycleKey(g, {2, 1, 0, 3}));
}

TEST(CanonicalCycleKeyTest, DistinguishesLabelPatterns) {
  const Graph a = MakeCycle({0, 0, 1, 1});
  const Graph b = MakeCycle({0, 1, 0, 1});
  EXPECT_NE(CanonicalCycleKey(a, {0, 1, 2, 3}),
            CanonicalCycleKey(b, {0, 1, 2, 3}));
}

FeatureSet TreeFeatures(const Graph& g, uint32_t max_edges) {
  FeatureSet out;
  DeadlineChecker unlimited{Deadline::Infinite()};
  EXPECT_TRUE(EnumerateTreeFeatures(g, max_edges, &unlimited, &out));
  return out;
}

FeatureSet CycleFeatures(const Graph& g, uint32_t max_len) {
  FeatureSet out;
  DeadlineChecker unlimited{Deadline::Infinite()};
  EXPECT_TRUE(EnumerateCycleFeatures(g, max_len, &unlimited, &out));
  return out;
}

TEST(TreeEnumerationTest, PathGraphFeatures) {
  // Path 0-1-2 (distinct labels): distinct tree features are
  // {0}, {1}, {2}, {0-1}, {1-2}, {0-1-2}.
  const Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  EXPECT_EQ(TreeFeatures(g, 4).size(), 6u);
}

TEST(TreeEnumerationTest, UniformLabelsCollapse) {
  // Unlabeled path of 3: features {v}, {v-v}, {v-v-v} = 3 canonical trees.
  const Graph g = MakePath({7, 7, 7});
  EXPECT_EQ(TreeFeatures(g, 4).size(), 3u);
}

TEST(TreeEnumerationTest, RespectsMaxEdges) {
  const Graph g = MakePath({0, 0, 0, 0, 0});
  // Max 1 edge: single vertex + single edge = 2 canonical features.
  EXPECT_EQ(TreeFeatures(g, 1).size(), 2u);
}

TEST(TreeEnumerationTest, StarAndPathDistinct) {
  const Graph g = MakeGraph({0, 0, 0, 0, 0},
                            {{0, 1}, {1, 2}, {2, 3}, {2, 4}});
  const FeatureSet feats = TreeFeatures(g, 3);
  // Among 3-edge features both the path and the 3-star occur.
  const Graph p4 = MakePath({0, 0, 0, 0});
  const Graph s4 = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_TRUE(feats.count(
      CanonicalTreeKey(p4, {0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}})));
  EXPECT_TRUE(feats.count(
      CanonicalTreeKey(s4, {0, 1, 2, 3}, {{0, 1}, {0, 2}, {0, 3}})));
}

TEST(CycleEnumerationTest, TriangleFound) {
  const Graph g = MakeCycle({0, 1, 2});
  const FeatureSet feats = CycleFeatures(g, 4);
  EXPECT_EQ(feats.size(), 1u);
  EXPECT_TRUE(feats.count(CanonicalCycleKey(g, {0, 1, 2})));
}

TEST(CycleEnumerationTest, NoCyclesInTree) {
  EXPECT_TRUE(CycleFeatures(MakePath({0, 1, 2, 3}), 6).empty());
}

TEST(CycleEnumerationTest, LengthLimit) {
  const Graph g = MakeCycle({0, 0, 0, 0, 0});
  EXPECT_TRUE(CycleFeatures(g, 4).empty());
  EXPECT_EQ(CycleFeatures(g, 5).size(), 1u);
}

TEST(CycleEnumerationTest, K4HasTrianglesAndSquares) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  const Graph g = b.Build();
  // Canonical features: the unlabeled triangle and the unlabeled 4-cycle.
  EXPECT_EQ(CycleFeatures(g, 4).size(), 2u);
  EXPECT_EQ(CycleFeatures(g, 3).size(), 1u);
}

TEST(FeatureEnumerationTest, DeadlineAborts) {
  GraphBuilder b;
  for (int i = 0; i < 30; ++i) b.AddVertex(0);
  for (VertexId u = 0; u < 30; ++u) {
    for (VertexId v = u + 1; v < 30; ++v) b.AddEdge(u, v);
  }
  const Graph g = b.Build();
  FeatureSet out;
  DeadlineChecker tight{Deadline::AfterSeconds(1e-4)};
  EXPECT_FALSE(EnumerateTreeFeatures(g, 4, &tight, &out));
}

}  // namespace
}  // namespace sgq
