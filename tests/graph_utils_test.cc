#include "graph/graph_utils.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

TEST(BfsTreeTest, PathGraph) {
  Graph g = MakePath({0, 0, 0, 0});
  const BfsTree t = BuildBfsTree(g, 0);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.parent[0], kInvalidVertex);
  EXPECT_EQ(t.parent[1], 0u);
  EXPECT_EQ(t.parent[3], 2u);
  EXPECT_EQ(t.level[3], 3u);
  EXPECT_EQ(t.num_levels, 4u);
  EXPECT_EQ(t.order.size(), 4u);
  EXPECT_EQ(t.order[0], 0u);
}

TEST(BfsTreeTest, LevelsFromMiddle) {
  Graph g = MakePath({0, 0, 0, 0, 0});
  const BfsTree t = BuildBfsTree(g, 2);
  EXPECT_EQ(t.level[2], 0u);
  EXPECT_EQ(t.level[0], 2u);
  EXPECT_EQ(t.level[4], 2u);
  EXPECT_EQ(t.num_levels, 3u);
  EXPECT_EQ(t.children[2].size(), 2u);
}

TEST(ConnectivityTest, Basics) {
  EXPECT_TRUE(IsConnected(Graph()));
  EXPECT_TRUE(IsConnected(MakePath({0, 1, 2})));
  EXPECT_FALSE(IsConnected(MakeGraph({0, 1, 2}, {{0, 1}})));
}

TEST(ConnectivityTest, Components) {
  Graph g = MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {2, 3}});
  const auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(TwoCoreTest, CycleWithTail) {
  // Triangle 0-1-2 with a tail 2-3-4: the 2-core is exactly the triangle.
  Graph g = MakeGraph({0, 0, 0, 0, 0},
                      {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto core = TwoCoreMembership(g);
  EXPECT_TRUE(core[0]);
  EXPECT_TRUE(core[1]);
  EXPECT_TRUE(core[2]);
  EXPECT_FALSE(core[3]);
  EXPECT_FALSE(core[4]);
}

TEST(TwoCoreTest, TreeHasEmptyCore) {
  Graph g = MakePath({0, 0, 0, 0});
  for (bool b : TwoCoreMembership(g)) EXPECT_FALSE(b);
}

TEST(TwoCoreTest, CascadingRemoval) {
  // A "broom": path attached to a star; everything should be removed.
  Graph g = MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {1, 3}, {1, 4}});
  for (bool b : TwoCoreMembership(g)) EXPECT_FALSE(b);
}

TEST(AcyclicTest, Basics) {
  EXPECT_TRUE(IsAcyclic(MakePath({0, 0, 0})));
  EXPECT_FALSE(IsAcyclic(MakeCycle({0, 0, 0})));
  // Forest (disconnected, no cycles).
  EXPECT_TRUE(IsAcyclic(MakeGraph({0, 0, 0, 0}, {{0, 1}, {2, 3}})));
  // Disconnected with one cycle.
  EXPECT_FALSE(
      IsAcyclic(MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}})));
}

TEST(SortedMultisetContainsTest, Cases) {
  using V = std::vector<Label>;
  const V empty;
  const V a = {1, 2, 2, 5};
  EXPECT_TRUE(SortedMultisetContains(a, empty));
  EXPECT_TRUE(SortedMultisetContains(a, V{2, 2}));
  EXPECT_TRUE(SortedMultisetContains(a, V{1, 2, 2, 5}));
  EXPECT_FALSE(SortedMultisetContains(a, V{2, 2, 2}));
  EXPECT_FALSE(SortedMultisetContains(a, V{3}));
  EXPECT_FALSE(SortedMultisetContains(a, V{1, 2, 2, 5, 5}));
  EXPECT_FALSE(SortedMultisetContains(empty, V{1}));
}

}  // namespace
}  // namespace sgq
