// White-box tests of CFL's CPI: tree shape, matching-order invariants
// (parents precede children; core before forest before leaves), CPI edge
// soundness, and the ablation knobs.
#include "matching/cfl.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

const CpiData& AsCpi(const FilterData& data) {
  return dynamic_cast<const CpiData&>(data);
}

TEST(CflCpiTest, MatchingOrderParentsPrecedeChildren) {
  Rng rng(55);
  std::vector<Label> labels = {0, 1};
  CflMatcher matcher;
  for (int trial = 0; trial < 60; ++trial) {
    const Graph q =
        GenerateRandomGraph(3 + rng.NextBounded(5),
                            1.5 + rng.NextDouble() * 2, labels, &rng);
    if (!IsConnected(q)) continue;
    const Graph g = GenerateRandomGraph(20, 4.0, labels, &rng);
    const auto data = matcher.Filter(q, g);
    if (!data->Passed()) continue;
    const CpiData& cpi = AsCpi(*data);
    ASSERT_EQ(cpi.matching_order.size(), q.NumVertices());
    std::vector<bool> seen(q.NumVertices(), false);
    for (VertexId u : cpi.matching_order) {
      if (u != cpi.tree.root) {
        EXPECT_TRUE(seen[cpi.tree.parent[u]])
            << "vertex " << u << " ordered before its tree parent";
      }
      seen[u] = true;
    }
  }
}

TEST(CflCpiTest, CoreVerticesComeFirst) {
  // Triangle (core) with two pendant vertices (forest/leaves).
  const Graph q = MakeGraph({0, 0, 0, 0, 0},
                            {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const Graph g = MakeGraph(
      {0, 0, 0, 0, 0, 0},
      {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  CflMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());
  const CpiData& cpi = AsCpi(*data);
  const auto core = TwoCoreMembership(q);
  // All core vertices (0,1,2) must appear before all non-core (3,4).
  uint32_t last_core_pos = 0, first_noncore_pos = UINT32_MAX;
  for (uint32_t i = 0; i < cpi.matching_order.size(); ++i) {
    if (core[cpi.matching_order[i]]) {
      last_core_pos = i;
    } else {
      first_noncore_pos = std::min(first_noncore_pos, i);
    }
  }
  EXPECT_LT(last_core_pos, first_noncore_pos);
}

TEST(CflCpiTest, CpiEdgesPointIntoPhi) {
  Rng rng(66);
  std::vector<Label> labels = {0, 1, 2};
  CflMatcher matcher;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph q = GenerateRandomGraph(4, 1.5, labels, &rng);
    if (!IsConnected(q)) continue;
    const Graph g = GenerateRandomGraph(25, 4.0, labels, &rng);
    const auto data = matcher.Filter(q, g);
    if (!data->Passed()) continue;
    const CpiData& cpi = AsCpi(*data);
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      if (u == cpi.tree.root) continue;
      const VertexId p = cpi.tree.parent[u];
      ASSERT_EQ(cpi.children[u].size(), data->phi.set(p).size());
      for (uint32_t pj = 0; pj < cpi.children[u].size(); ++pj) {
        const VertexId pv = data->phi.set(p)[pj];
        for (uint32_t idx : cpi.children[u][pj]) {
          ASSERT_LT(idx, data->phi.set(u).size());
          const VertexId cv = data->phi.set(u)[idx];
          // CPI edge => real data edge between the two candidates.
          EXPECT_TRUE(g.HasEdge(pv, cv));
        }
      }
    }
  }
}

TEST(CflCpiTest, BottomUpRefinementOnlyShrinksPhi) {
  Rng rng(77);
  std::vector<Label> labels = {0, 1};
  CflMatcher with{CflOptions{.use_nlf = true, .refine_bottom_up = true}};
  CflMatcher without{CflOptions{.use_nlf = true, .refine_bottom_up = false}};
  for (int trial = 0; trial < 40; ++trial) {
    const Graph q = GenerateRandomGraph(4, 1.5, labels, &rng);
    if (!IsConnected(q)) continue;
    const Graph g = GenerateRandomGraph(25, 3.0, labels, &rng);
    const auto refined = with.Filter(q, g);
    const auto raw = without.Filter(q, g);
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      EXPECT_LE(refined->phi.set(u).size(), raw->phi.set(u).size());
      for (VertexId v : refined->phi.set(u)) {
        EXPECT_TRUE(raw->phi.Contains(u, v));
      }
    }
    // Both must still count the same embeddings.
    const uint64_t expected = BruteForceEnumerate(q, g, UINT64_MAX);
    if (refined->Passed()) {
      EXPECT_EQ(with.Enumerate(q, g, *refined, UINT64_MAX, nullptr)
                    .embeddings,
                expected);
    } else {
      EXPECT_EQ(expected, 0u);
    }
    if (raw->Passed()) {
      EXPECT_EQ(
          without.Enumerate(q, g, *raw, UINT64_MAX, nullptr).embeddings,
          expected);
    } else {
      EXPECT_EQ(expected, 0u);
    }
  }
}

TEST(CflCpiTest, MemoryBytesCountsCpi) {
  const Graph q = MakePath({0, 1, 0});
  const Graph g = MakeCycle({0, 1, 0, 1});
  CflMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());
  EXPECT_GT(data->MemoryBytes(), data->phi.MemoryBytes());
}

TEST(CflCpiTest, SingleVertexQueryWorks) {
  const Graph q = MakeGraph({1}, {});
  const Graph g = MakeGraph({1, 1, 0}, {{0, 1}, {1, 2}});
  CflMatcher matcher;
  const auto data = matcher.Filter(q, g);
  ASSERT_TRUE(data->Passed());
  EXPECT_EQ(matcher.Enumerate(q, g, *data, UINT64_MAX, nullptr).embeddings,
            2u);
}

}  // namespace
}  // namespace sgq
