// Index-level tests: the no-false-drop invariant (C(q) ⊇ A(q)) for every
// IFV index, OOT behavior, and the structural precision relationships the
// paper reports (Grapes >= GGSX thanks to occurrence counts).
#include <gtest/gtest.h>

#include <memory>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "index/ct_index.h"
#include "index/ggsx_index.h"
#include "index/graph_index.h"
#include "index/graphgrep_index.h"
#include "index/mined_path_index.h"
#include "index/grapes_index.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

std::unique_ptr<GraphIndex> MakeIndex(const std::string& name) {
  if (name == "Grapes") return std::make_unique<GrapesIndex>();
  if (name == "GGSX") return std::make_unique<GgsxIndex>();
  if (name == "CT-Index") return std::make_unique<CtIndex>();
  if (name == "GraphGrep") return std::make_unique<GraphGrepIndex>();
  if (name == "MinedPath") return std::make_unique<MinedPathIndex>();
  SGQ_LOG(Fatal) << "unknown index " << name;
  return nullptr;
}

GraphDatabase SmallDatabase() {
  GraphDatabase db;
  db.Add(MakePath({0, 1, 2}));                                // 0
  db.Add(MakeCycle({0, 1, 2}));                               // 1
  db.Add(MakeGraph({0, 1, 2, 1}, {{0, 1}, {1, 2}, {2, 3}}));  // 2
  db.Add(MakePath({3, 3}));                                   // 3
  return db;
}

class IndexTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<GraphIndex> index_ = MakeIndex(GetParam());
};

TEST_P(IndexTest, BuildsAndReportsMemory) {
  const GraphDatabase db = SmallDatabase();
  ASSERT_TRUE(index_->Build(db, Deadline::Infinite()));
  EXPECT_TRUE(index_->built());
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

TEST_P(IndexTest, NoFalseDropsOnSmallDatabase) {
  const GraphDatabase db = SmallDatabase();
  ASSERT_TRUE(index_->Build(db, Deadline::Infinite()));
  const Graph q = MakePath({0, 1});
  const auto candidates = index_->FilterCandidates(q);
  for (GraphId g = 0; g < db.size(); ++g) {
    if (BruteForceContains(q, db.graph(g))) {
      EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), g) !=
                  candidates.end())
          << GetParam() << " dropped answer graph " << g;
    }
  }
}

TEST_P(IndexTest, ImpossibleLabelYieldsNoCandidates) {
  const GraphDatabase db = SmallDatabase();
  ASSERT_TRUE(index_->Build(db, Deadline::Infinite()));
  const Graph q = MakePath({40, 41});
  if (GetParam() == "MinedPath") {
    // Mining-based indices only select frequent features; a label absent
    // from every data graph is infrequent, hence unindexed, hence unable
    // to prune — all graphs come back and verification rejects them (the
    // gIndex semantics the paper's §II-B1 describes).
    EXPECT_EQ(index_->FilterCandidates(q).size(), db.size());
  } else {
    EXPECT_TRUE(index_->FilterCandidates(q).empty());
  }
}

TEST_P(IndexTest, CandidatesSortedAndUnique) {
  const GraphDatabase db = SmallDatabase();
  ASSERT_TRUE(index_->Build(db, Deadline::Infinite()));
  const auto candidates = index_->FilterCandidates(MakePath({1}));
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
              candidates.end());
}

TEST_P(IndexTest, NoFalseDropsRandomized) {
  SyntheticParams params;
  params.num_graphs = 25;
  params.vertices_per_graph = 20;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 17;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  ASSERT_TRUE(index_->Build(db, Deadline::Infinite()));

  Rng rng(5);
  int verified_answers = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Graph q;
    const QueryKind kind =
        trial % 2 == 0 ? QueryKind::kSparse : QueryKind::kDense;
    if (!GenerateQuery(db, kind, 4 + trial % 5, &rng, &q)) continue;
    const auto candidates = index_->FilterCandidates(q);
    for (GraphId g = 0; g < db.size(); ++g) {
      if (BruteForceContains(q, db.graph(g))) {
        ++verified_answers;
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), g) !=
                    candidates.end())
            << GetParam() << " dropped graph " << g << " in trial " << trial;
      }
    }
  }
  EXPECT_GT(verified_answers, 0);
}

TEST_P(IndexTest, BuildTimesOutOnDenseDatabase) {
  // A database of dense unlabeled graphs with an unreasonably tight
  // deadline must report OOT, like Tables VI and VIII.
  SyntheticParams params;
  params.num_graphs = 30;
  params.vertices_per_graph = 60;
  params.degree = 20.0;
  params.num_labels = 1;
  params.seed = 23;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  EXPECT_FALSE(index_->Build(db, Deadline::AfterSeconds(1e-4)));
  EXPECT_FALSE(index_->built());
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexTest,
                         ::testing::Values("Grapes", "GGSX", "CT-Index", "GraphGrep",
                                           "MinedPath"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(GrapesVsGgsxTest, CountsGiveGrapesExtraPruning) {
  // Query with a repeated feature: two disjoint (0,1) edges. A data graph
  // with only ONE (0,1) edge passes GGSX's presence check but fails
  // Grapes' count check.
  GraphDatabase db;
  db.Add(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));           // one (0,1) edge
  db.Add(MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}, {1, 2}}));  // two

  const Graph q = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}, {1, 2}});

  GrapesIndex grapes;
  GgsxIndex ggsx;
  ASSERT_TRUE(grapes.Build(db, Deadline::Infinite()));
  ASSERT_TRUE(ggsx.Build(db, Deadline::Infinite()));

  const auto grapes_cands = grapes.FilterCandidates(q);
  const auto ggsx_cands = ggsx.FilterCandidates(q);
  // Grapes prunes graph 0; GGSX keeps it (presence only).
  EXPECT_EQ(grapes_cands, (std::vector<GraphId>{1}));
  EXPECT_LE(grapes_cands.size(), ggsx_cands.size());
  EXPECT_TRUE(std::find(ggsx_cands.begin(), ggsx_cands.end(), 1) !=
              ggsx_cands.end());
}

TEST(CtIndexTest, FingerprintSubsetForSubgraphs) {
  // If q ⊆ G then fingerprint(q) ⊆ fingerprint(G).
  const Graph g =
      MakeGraph({0, 1, 2, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const Graph q = MakePath({0, 1, 2});
  CtIndex index;
  Bitset fq, fg;
  DeadlineChecker unlimited{Deadline::Infinite()};
  ASSERT_TRUE(index.ComputeFingerprint(q, &unlimited, &fq));
  ASSERT_TRUE(index.ComputeFingerprint(g, &unlimited, &fg));
  EXPECT_TRUE(fq.IsSubsetOf(fg));
  EXPECT_FALSE(fg.IsSubsetOf(fq));
}

TEST(CtIndexTest, CycleFeatureDistinguishes) {
  // A 4-cycle query against a path database: tree features match but the
  // cycle feature prunes.
  GraphDatabase db;
  db.Add(MakePath({0, 0, 0, 0, 0}));
  db.Add(MakeCycle({0, 0, 0, 0}));
  CtIndex index;
  ASSERT_TRUE(index.Build(db, Deadline::Infinite()));
  const auto candidates = index.FilterCandidates(MakeCycle({0, 0, 0, 0}));
  EXPECT_EQ(candidates, (std::vector<GraphId>{1}));
}

}  // namespace
}  // namespace sgq

namespace sgq {
namespace {

TEST(MemoryBudgetTest, BuildReportsOomWhenBudgetExceeded) {
  SyntheticParams params;
  params.num_graphs = 30;
  params.vertices_per_graph = 40;
  params.degree = 6.0;
  params.num_labels = 10;
  params.seed = 91;
  const GraphDatabase db = GenerateSyntheticDatabase(params);

  GrapesOptions tight;
  tight.memory_limit_bytes = 1024;  // absurdly small
  GrapesIndex grapes(tight);
  EXPECT_FALSE(grapes.Build(db, Deadline::Infinite()));
  EXPECT_EQ(grapes.build_failure(), GraphIndex::BuildFailure::kMemory);

  GgsxOptions tight_ggsx;
  tight_ggsx.memory_limit_bytes = 1024;
  GgsxIndex ggsx(tight_ggsx);
  EXPECT_FALSE(ggsx.Build(db, Deadline::Infinite()));
  EXPECT_EQ(ggsx.build_failure(), GraphIndex::BuildFailure::kMemory);

  // A generous budget succeeds and reports kNone.
  GrapesOptions loose;
  loose.memory_limit_bytes = 1ull << 32;
  GrapesIndex ok(loose);
  EXPECT_TRUE(ok.Build(db, Deadline::Infinite()));
  EXPECT_EQ(ok.build_failure(), GraphIndex::BuildFailure::kNone);
}

TEST(MemoryBudgetTest, TimeoutStillReportedAsTimeout) {
  SyntheticParams params;
  params.num_graphs = 20;
  params.vertices_per_graph = 60;
  params.degree = 20.0;
  params.num_labels = 1;
  params.seed = 92;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  GrapesIndex grapes;
  EXPECT_FALSE(grapes.Build(db, Deadline::AfterSeconds(1e-4)));
  EXPECT_EQ(grapes.build_failure(), GraphIndex::BuildFailure::kTimeout);
}

}  // namespace
}  // namespace sgq
