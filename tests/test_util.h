// Shared helpers for the test suite.
#ifndef SGQ_TESTS_TEST_UTIL_H_
#define SGQ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <initializer_list>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace sgq::testing {

// Builds a graph from a label list and an edge list.
inline Graph MakeGraph(std::initializer_list<Label> labels,
                       std::initializer_list<std::pair<VertexId, VertexId>>
                           edges) {
  GraphBuilder builder;
  for (Label l : labels) builder.AddVertex(l);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

// A labeled path v0 - v1 - ... - v_{n-1}.
inline Graph MakePath(std::initializer_list<Label> labels) {
  GraphBuilder builder;
  VertexId prev = kInvalidVertex;
  for (Label l : labels) {
    const VertexId v = builder.AddVertex(l);
    if (prev != kInvalidVertex) builder.AddEdge(prev, v);
    prev = v;
  }
  return builder.Build();
}

// A labeled cycle.
inline Graph MakeCycle(std::initializer_list<Label> labels) {
  GraphBuilder builder;
  std::vector<VertexId> ids;
  for (Label l : labels) ids.push_back(builder.AddVertex(l));
  for (size_t i = 0; i < ids.size(); ++i) {
    builder.AddEdge(ids[i], ids[(i + 1) % ids.size()]);
  }
  return builder.Build();
}

// Canonicalizes a list of embeddings for order-insensitive comparison.
inline std::vector<std::vector<VertexId>> Sorted(
    std::vector<std::vector<VertexId>> embeddings) {
  std::sort(embeddings.begin(), embeddings.end());
  return embeddings;
}

}  // namespace sgq::testing

#endif  // SGQ_TESTS_TEST_UTIL_H_
