// Property tests for the adaptive sorted-set intersection kernels
// (util/intersect.h): every variant must agree exactly with
// std::set_intersection on strictly-increasing uint32 inputs, across sizes,
// size skews, and overlap shapes — including the SIMD path when the host
// CPU supports it, the scalar path with SIMD force-disabled, and the
// empty/disjoint/subset edge cases.
#include "util/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "util/rng.h"

namespace sgq {
namespace {

std::vector<uint32_t> Reference(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// A strictly increasing sequence of `n` values drawn from [0, universe).
std::vector<uint32_t> RandomSorted(size_t n, uint32_t universe, Rng* rng) {
  std::vector<uint32_t> out;
  out.reserve(n);
  while (out.size() < n) {
    out.push_back(rng->NextBounded(universe));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Runs every kernel variant on (a, b) and checks each against the reference.
void CheckAllKernels(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  const std::vector<uint32_t> expected = Reference(a, b);
  std::vector<uint32_t> out = {0xdeadbeef};  // must be cleared by the kernel

  IntersectMergeInto(a, b, &out);
  EXPECT_EQ(out, expected) << "merge";
  IntersectMergeInto(b, a, &out);
  EXPECT_EQ(out, expected) << "merge swapped";

  IntersectGallopInto(a, b, &out);
  EXPECT_EQ(out, expected) << "gallop";
  IntersectGallopInto(b, a, &out);
  EXPECT_EQ(out, expected) << "gallop swapped";

  IntersectSimdInto(a, b, &out);
  EXPECT_EQ(out, expected) << "simd";
  IntersectSimdInto(b, a, &out);
  EXPECT_EQ(out, expected) << "simd swapped";

  IntersectCounters counters;
  IntersectInto(a, b, &out, &counters);
  EXPECT_EQ(out, expected) << "adaptive";
  // An empty operand short-circuits before dispatch, so no kernel (and no
  // dispatch counter) fires; otherwise exactly one kernel ran.
  const uint64_t dispatches = a.empty() || b.empty() ? 0u : 1u;
  EXPECT_EQ(counters.calls, dispatches);
  EXPECT_EQ(counters.merge_calls + counters.gallop_calls +
                counters.simd_calls,
            dispatches);
  EXPECT_EQ(counters.output_elems, expected.size());
  IntersectInto(b, a, &out, &counters);
  EXPECT_EQ(out, expected) << "adaptive swapped";

  EXPECT_EQ(IntersectNonEmpty(a, b), !expected.empty());
  EXPECT_EQ(IntersectNonEmpty(b, a), !expected.empty());
}

TEST(IntersectTest, EdgeCases) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> one = {7};
  const std::vector<uint32_t> evens = {0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  const std::vector<uint32_t> odds = {1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  const std::vector<uint32_t> inner = {4, 6, 8};

  CheckAllKernels(empty, empty);
  CheckAllKernels(empty, evens);
  CheckAllKernels(one, odds);       // singleton hit
  CheckAllKernels(one, evens);      // singleton miss
  CheckAllKernels(evens, odds);     // interleaved, fully disjoint
  CheckAllKernels(inner, evens);    // strict subset
  CheckAllKernels(evens, evens);    // identical
  // Disjoint ranges: a entirely below b.
  CheckAllKernels({1, 2, 3}, {100, 200, 300});
}

TEST(IntersectTest, RandomizedAgainstStdSetIntersection) {
  Rng rng(99);
  // (|a|, |b|) pairs spanning the dispatcher's regimes: comparable sizes
  // (merge/SIMD), skews beyond kIntersectGallopRatio (gallop), and sizes
  // straddling kIntersectSimdMin.
  const std::pair<size_t, size_t> shapes[] = {
      {3, 5},     {15, 17},   {64, 64},    {100, 1000}, {5, 500},
      {2, 10000}, {800, 803}, {1000, 1000}, {1, 4096},  {33, 2000}};
  for (const auto& [na, nb] : shapes) {
    for (uint32_t universe : {64u, 1024u, 1u << 20}) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = RandomSorted(na, universe, &rng);
        const auto b = RandomSorted(nb, universe, &rng);
        CheckAllKernels(a, b);
      }
    }
  }
}

TEST(IntersectTest, ScalarPathMatchesWithSimdDisabled) {
  // Force the scalar fallback and re-run the randomized sweep; afterwards
  // restore the default so test order does not matter.
  const bool was_enabled = IntersectSimdEnabled();
  SetIntersectSimdEnabled(false);
  EXPECT_FALSE(IntersectSimdEnabled());
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomSorted(1 + rng.NextBounded(300), 4096, &rng);
    const auto b = RandomSorted(1 + rng.NextBounded(300), 4096, &rng);
    CheckAllKernels(a, b);
  }
  SetIntersectSimdEnabled(was_enabled);
  EXPECT_EQ(IntersectSimdEnabled(), was_enabled);
}

TEST(IntersectTest, AdaptiveDispatchRespectsGallopRatio) {
  Rng rng(3);
  const auto small_list = RandomSorted(4, 1 << 16, &rng);
  const auto large = RandomSorted(4 * kIntersectGallopRatio + 64, 1 << 16,
                                  &rng);
  IntersectCounters counters;
  std::vector<uint32_t> out;
  IntersectInto(small_list, large, &out, &counters);
  EXPECT_EQ(counters.gallop_calls, 1u) << "skewed sizes must gallop";

  const auto peer = RandomSorted(large.size(), 1 << 16, &rng);
  IntersectCounters counters2;
  IntersectInto(large, peer, &out, &counters2);
  EXPECT_EQ(counters2.gallop_calls, 0u)
      << "comparable sizes must use the (possibly vectorized) merge";
  EXPECT_EQ(counters2.merge_calls + counters2.simd_calls, 1u);
}

TEST(IntersectTest, BitmapAndStampVariants) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t universe = 512;
    const auto list = RandomSorted(1 + rng.NextBounded(200), universe, &rng);
    const auto members = RandomSorted(1 + rng.NextBounded(200), universe, &rng);
    const auto expected = Reference(list, members);

    std::vector<uint8_t> bitmap(universe, 0);
    for (uint32_t v : members) bitmap[v] = 1;
    std::vector<uint32_t> out = {123};
    IntersectBitmapInto(list, bitmap, &out);
    EXPECT_EQ(out, expected) << "bitmap";

    // Stamp rows: only cells stamped with the *current* epoch count, so
    // leftovers from a previous epoch must not leak in.
    const uint32_t epoch = 5;
    std::vector<uint32_t> stamps(universe, epoch - 1);  // stale everywhere
    for (uint32_t v : members) stamps[v] = epoch;
    IntersectStampInto(list, stamps, epoch, &out);
    EXPECT_EQ(out, expected) << "stamp";
  }
}

}  // namespace
}  // namespace sgq
