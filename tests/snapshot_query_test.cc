// End-to-end bit-identity of the snapshot path: a database loaded from a
// binary mmap CSR snapshot must answer every query exactly like the same
// database loaded from text — across engines, with and without LIMIT,
// streamed and batch, with and without the candidate index — and must be
// safe to query concurrently from many threads over one shared mapping.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gen/biggraph_gen.h"
#include "gen/graph_gen.h"
#include "graph/csr_snapshot.h"
#include "graph/graph_io.h"
#include "index/vertex_candidate_index.h"
#include "query/engine_factory.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakePath;

// A mixed database: a couple of "massive-ish" power-law graphs plus a spread
// of small random graphs, so scans have both hits and misses.
GraphDatabase MakeDb() {
  GraphDatabase db;
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    PowerLawParams params;
    params.num_vertices = 600;
    params.avg_degree = 8.0;
    params.num_labels = 6;
    params.seed = seed;
    db.Add(GeneratePowerLawGraph(params));
  }
  SyntheticParams params;
  params.num_graphs = 24;
  params.vertices_per_graph = 30;
  params.degree = 4.0;
  params.num_labels = 6;
  params.seed = 99;
  GraphDatabase small = GenerateSyntheticDatabase(params);
  for (GraphId i = 0; i < small.size(); ++i) db.Add(small.graph(i));
  return db;
}

std::vector<Graph> Queries() {
  return {MakePath({0, 1}),       MakePath({1, 2, 3}),
          MakeCycle({0, 1, 2}),   MakePath({2, 1, 0, 1}),
          MakeCycle({1, 2, 3, 4}), MakePath({5, 0})};
}

// Collects streamed ids and optionally stops after `limit` answers.
class LimitSink : public ResultSink {
 public:
  explicit LimitSink(uint64_t limit) : limit_(limit) {}
  bool OnAnswer(GraphId id) override {
    ids.push_back(id);
    return limit_ == 0 || ids.size() < limit_;
  }
  std::vector<GraphId> ids;

 private:
  const uint64_t limit_;
};

class SnapshotQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_path_ = ::testing::TempDir() + "snapshot_query_db.txt";
    snap_path_ = ::testing::TempDir() + "snapshot_query_db.csr";
    GraphDatabase db = MakeDb();
    std::string error;
    ASSERT_TRUE(SaveDatabase(db, text_path_, &error)) << error;
    ASSERT_TRUE(WriteSnapshot(db, snap_path_, &error)) << error;
  }

  void TearDown() override {
    std::remove(text_path_.c_str());
    std::remove(snap_path_.c_str());
  }

  std::string text_path_;
  std::string snap_path_;
};

TEST_F(SnapshotQueryTest, EnginesBitIdenticalAcrossLimitAndStream) {
  std::string error;
  GraphDatabase from_text, from_snap;
  ASSERT_TRUE(LoadDatabase(text_path_, &from_text, &error)) << error;
  ASSERT_TRUE(LoadDatabase(snap_path_, &from_snap, &error)) << error;
  ASSERT_FALSE(from_text.graph(0).IsMapped());
  ASSERT_TRUE(from_snap.graph(0).IsMapped());
  ASSERT_TRUE(DatabasesEqual(from_text, from_snap));
  // Index the snapshot side only: indexed candidate generation over mapped
  // arrays must still match the plain full scan over owned arrays.
  AttachCandidateIndexes(&from_snap, /*min_vertices=*/100);

  for (const std::string& name :
       {"CFL", "GraphQL", "CFQL", "CFQL-parallel-intra"}) {
    auto text_engine = MakeEngine(name);
    auto snap_engine = MakeEngine(name);
    ASSERT_TRUE(text_engine->Prepare(from_text, Deadline::Infinite()));
    ASSERT_TRUE(snap_engine->Prepare(from_snap, Deadline::Infinite()));
    for (const Graph& q : Queries()) {
      // Batch.
      const QueryResult expected = text_engine->Query(q);
      const QueryResult actual = snap_engine->Query(q);
      EXPECT_EQ(expected.answers, actual.answers) << name;

      // Streamed, unlimited: same order, same set.
      LimitSink text_stream(0), snap_stream(0);
      text_engine->Query(q, Deadline::Infinite(), &text_stream);
      snap_engine->Query(q, Deadline::Infinite(), &snap_stream);
      EXPECT_EQ(text_stream.ids, snap_stream.ids) << name;
      EXPECT_EQ(expected.answers, snap_stream.ids) << name;

      // Streamed with LIMIT 2: both stop at the identical prefix.
      if (expected.answers.size() >= 2) {
        LimitSink text_limited(2), snap_limited(2);
        text_engine->Query(q, Deadline::Infinite(), &text_limited);
        snap_engine->Query(q, Deadline::Infinite(), &snap_limited);
        EXPECT_EQ(text_limited.ids, snap_limited.ids) << name;
        EXPECT_EQ(std::vector<GraphId>(expected.answers.begin(),
                                       expected.answers.begin() + 2),
                  snap_limited.ids)
            << name;
      }
    }
  }
}

TEST_F(SnapshotQueryTest, ServiceLimitAndStreamOverSnapshot) {
  std::string error;
  GraphDatabase from_text, from_snap;
  ASSERT_TRUE(LoadDatabase(text_path_, &from_text, &error)) << error;
  ASSERT_TRUE(LoadDatabase(snap_path_, &from_snap, &error)) << error;

  ServiceConfig config;
  config.engine_name = "CFQL";
  config.workers = 2;
  config.queue_capacity = 16;
  // Index everything on both sides: the service path exercises admission,
  // LIMIT enforcement and streaming over indexed mapped graphs.
  config.engine.candidate_index_min_vertices = 0;

  QueryService text_service(config), snap_service(config);
  ASSERT_TRUE(text_service.Start(std::move(from_text), &error)) << error;
  ASSERT_TRUE(snap_service.Start(std::move(from_snap), &error)) << error;

  for (const Graph& q : Queries()) {
    const auto expected = text_service.Execute(q);
    const auto actual = snap_service.Execute(q);
    EXPECT_EQ(expected.result.answers, actual.result.answers);

    QueryService::ExecuteOptions options;
    options.limit = 2;
    LimitSink text_sink(0), snap_sink(0);
    options.sink = &text_sink;
    const auto text_limited = text_service.Execute(q, options);
    options.sink = &snap_sink;
    const auto snap_limited = snap_service.Execute(q, options);
    EXPECT_EQ(text_limited.result.answers, snap_limited.result.answers);
    EXPECT_EQ(text_sink.ids, snap_sink.ids);
  }
}

TEST_F(SnapshotQueryTest, ConcurrentQueriesOverOneMapping) {
  std::string error;
  GraphDatabase from_snap;
  ASSERT_TRUE(LoadDatabase(snap_path_, &from_snap, &error)) << error;
  AttachCandidateIndexes(&from_snap, /*min_vertices=*/0);

  ServiceConfig config;
  config.engine_name = "CFQL-parallel-intra";
  config.workers = 4;
  config.queue_capacity = 64;
  QueryService service(config);
  ASSERT_TRUE(service.Start(std::move(from_snap), &error)) << error;

  // Reference answers, computed single-threaded first.
  const std::vector<Graph> queries = Queries();
  std::vector<std::vector<GraphId>> expected;
  for (const Graph& q : queries) {
    expected.push_back(service.Execute(q).result.answers);
  }

  // 8 client threads hammer the shared mapping concurrently; every answer
  // must match the single-threaded reference (TSan watches the mapping).
  std::vector<std::thread> clients;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          const auto response = service.Execute(queries[i]);
          if (response.result.answers != expected[i]) ++failures[t];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(0, failures[t]) << "client " << t;
}

}  // namespace
}  // namespace sgq
