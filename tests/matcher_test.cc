// Cross-validation of all preprocessing-enumeration matchers (GraphQL, CFL,
// CFQL) against the brute-force oracle, plus the completeness property of
// Definition III.1 for every filter.
#include "matching/matcher.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/graph_gen.h"
#include "graph/graph_utils.h"
#include "matching/brute_force.h"
#include "matching/cfl.h"
#include "matching/cfql.h"
#include "matching/direct_enumeration.h"
#include "matching/graphql.h"
#include "matching/spath.h"
#include "matching/turboiso.h"
#include "tests/test_util.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakeCycle;
using ::sgq::testing::MakeGraph;
using ::sgq::testing::MakePath;

std::unique_ptr<Matcher> MakeMatcher(const std::string& name) {
  if (name == "GraphQL") return std::make_unique<GraphQlMatcher>();
  if (name == "CFL") return std::make_unique<CflMatcher>();
  if (name == "CFQL") return std::make_unique<CfqlMatcher>();
  if (name == "TurboIso") return std::make_unique<TurboIsoMatcher>();
  if (name == "Ullmann") return std::make_unique<UllmannMatcher>();
  if (name == "QuickSI") return std::make_unique<QuickSiMatcher>();
  if (name == "SPath") return std::make_unique<SPathMatcher>();
  // Option variants: every ablation knob must stay correct, not just the
  // defaults.
  if (name == "GraphQL_r0") {
    return std::make_unique<GraphQlMatcher>(
        GraphQlOptions{.refinement_rounds = 0});
  }
  if (name == "GraphQL_r4_noprofile") {
    return std::make_unique<GraphQlMatcher>(
        GraphQlOptions{.refinement_rounds = 4, .use_profile = false});
  }
  if (name == "CFL_bare") {
    return std::make_unique<CflMatcher>(
        CflOptions{.use_nlf = false, .refine_bottom_up = false});
  }
  if (name == "CFQL_nonlf") {
    return std::make_unique<CfqlMatcher>(CflOptions{.use_nlf = false});
  }
  if (name == "TurboIso_nonlf") {
    return std::make_unique<TurboIsoMatcher>(
        TurboIsoOptions{.use_nlf = false});
  }
  if (name == "SPath_d1") {
    return std::make_unique<SPathMatcher>(
        SPathOptions{.signature_depth = 1});
  }
  if (name == "SPath_d3") {
    return std::make_unique<SPathMatcher>(
        SPathOptions{.signature_depth = 3});
  }
  SGQ_LOG(Fatal) << "unknown matcher " << name;
  return nullptr;
}

class MatcherTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Matcher> matcher_ = MakeMatcher(GetParam());

  uint64_t CountEmbeddings(const Graph& q, const Graph& g) {
    const auto data = matcher_->Filter(q, g);
    if (!data->Passed()) return 0;
    return matcher_->Enumerate(q, g, *data, UINT64_MAX, nullptr).embeddings;
  }
};

TEST_P(MatcherTest, TriangleInTriangle) {
  const Graph tri = MakeCycle({0, 0, 0});
  EXPECT_EQ(CountEmbeddings(tri, tri), 6u);  // all 3! automorphisms
}

TEST_P(MatcherTest, PathInPath) {
  const Graph q = MakePath({0, 1});
  const Graph g = MakePath({0, 1, 0, 1});
  // Edges with labels (0,1): (0,1), (2,1), (2,3) -> 3 embeddings.
  EXPECT_EQ(CountEmbeddings(q, g), 3u);
}

TEST_P(MatcherTest, LabelMismatchRejectedByFilter) {
  const Graph q = MakePath({5, 5});
  const Graph g = MakePath({0, 1, 2});
  const auto data = matcher_->Filter(q, g);
  EXPECT_FALSE(data->Passed());
}

TEST_P(MatcherTest, FigureOneExample) {
  // The paper's Figure 1: q = triangle (A,B,C) plus a pendant A on B... we
  // encode labels A=0, B=1, C=2. Query: u0(A)-u1(B)-u2(C)-u0, u1-u3(A).
  const Graph q = MakeGraph({0, 1, 2, 0}, {{0, 1}, {1, 2}, {0, 2}, {1, 3}});
  // Data graph: v0(A)-v1(B)-v2(C)-v0, v1-v3(A), v1-v4(A), plus v4(A)-v5(B).
  const Graph g = MakeGraph({0, 1, 2, 0, 0, 1},
                            {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {1, 4}, {4, 5}});
  const uint64_t expected = BruteForceEnumerate(q, g, UINT64_MAX);
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(CountEmbeddings(q, g), expected);
}

TEST_P(MatcherTest, SingleVertexQuery) {
  const Graph q = MakeGraph({3}, {});
  const Graph g = MakeGraph({3, 3, 1}, {{0, 1}, {1, 2}});
  EXPECT_EQ(CountEmbeddings(q, g), 2u);
}

TEST_P(MatcherTest, EmptyDataGraph) {
  const Graph q = MakePath({0, 1});
  const Graph g;
  const auto data = matcher_->Filter(q, g);
  EXPECT_FALSE(data->Passed());
}

TEST_P(MatcherTest, ContainsReportsCorrectly) {
  const Graph q = MakeCycle({0, 1, 0, 1});
  const Graph yes = MakeCycle({0, 1, 0, 1});
  const Graph no = MakePath({0, 1, 0, 1});
  DeadlineChecker unlimited{Deadline::Infinite()};
  EXPECT_EQ(matcher_->Contains(q, yes, &unlimited), 1);
  EXPECT_EQ(matcher_->Contains(q, no, &unlimited), 0);
}

TEST_P(MatcherTest, LimitStopsEnumeration) {
  const Graph q = MakePath({0, 0});
  const Graph g = MakeCycle({0, 0, 0, 0, 0});
  const auto data = matcher_->Filter(q, g);
  ASSERT_TRUE(data->Passed());
  const auto r = matcher_->Enumerate(q, g, *data, 3, nullptr);
  EXPECT_EQ(r.embeddings, 3u);
}

TEST_P(MatcherTest, CallbackReceivesValidEmbeddings) {
  const Graph q = MakeCycle({0, 0, 0});
  const Graph g = MakeGraph({0, 0, 0, 0},
                            {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}});
  const auto data = matcher_->Filter(q, g);
  ASSERT_TRUE(data->Passed());
  uint64_t count = 0;
  matcher_->Enumerate(
      q, g, *data, UINT64_MAX, nullptr,
      [&](const std::vector<VertexId>& mapping) {
        ++count;
        EXPECT_EQ(mapping.size(), q.NumVertices());
        // Injectivity, labels, and edges.
        for (VertexId u = 0; u < q.NumVertices(); ++u) {
          EXPECT_EQ(q.label(u), g.label(mapping[u]));
          for (VertexId u2 = u + 1; u2 < q.NumVertices(); ++u2) {
            EXPECT_NE(mapping[u], mapping[u2]);
          }
          for (VertexId w : q.Neighbors(u)) {
            EXPECT_TRUE(g.HasEdge(mapping[u], mapping[w]));
          }
        }
        return true;
      });
  EXPECT_GT(count, 0u);
}

// Randomized sweep: embedding counts must equal brute force, and the filter
// must be complete (every embedding's mapped vertex appears in Φ(u)).
TEST_P(MatcherTest, RandomizedAgainstBruteForce) {
  Rng rng(777);
  std::vector<Label> labels = {0, 1, 2};
  int nonzero_cases = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const uint32_t qn = 2 + static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t gn = 4 + static_cast<uint32_t>(rng.NextBounded(10));
    Graph q = GenerateRandomGraph(qn, 1.0 + rng.NextDouble() * 2.0, labels,
                                  &rng);
    const Graph g =
        GenerateRandomGraph(gn, 1.0 + rng.NextDouble() * 3.0, labels, &rng);
    // Matchers require connected queries; the generator guarantees this
    // whenever the edge budget allows, so skip rare disconnected outputs.
    if (!IsConnected(q) || q.NumVertices() == 0) continue;

    const auto expected = BruteForceAllEmbeddings(q, g);
    if (!expected.empty()) ++nonzero_cases;

    const auto data = matcher_->Filter(q, g);
    // Completeness (Definition III.1).
    for (const auto& mapping : expected) {
      for (VertexId u = 0; u < q.NumVertices(); ++u) {
        EXPECT_TRUE(data->phi.Contains(u, mapping[u]))
            << GetParam() << " dropped candidate " << mapping[u]
            << " of query vertex " << u << " in trial " << trial;
      }
    }
    uint64_t count = 0;
    if (data->Passed()) {
      count = matcher_->Enumerate(q, g, *data, UINT64_MAX, nullptr)
                  .embeddings;
    }
    EXPECT_EQ(count, expected.size()) << GetParam() << " trial " << trial;
  }
  EXPECT_GT(nonzero_cases, 5);  // the sweep exercised real matches
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherTest,
                         ::testing::Values("GraphQL", "CFL", "CFQL",
                                           "TurboIso", "Ullmann", "QuickSI",
                                           "SPath"),
                         [](const auto& info) { return info.param; });

INSTANTIATE_TEST_SUITE_P(OptionVariants, MatcherTest,
                         ::testing::Values("GraphQL_r0",
                                           "GraphQL_r4_noprofile",
                                           "CFL_bare", "CFQL_nonlf",
                                           "TurboIso_nonlf", "SPath_d1",
                                           "SPath_d3"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace sgq
