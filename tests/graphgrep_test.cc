// White-box tests of GraphGrep's hashed-bucket filter: collision soundness
// at extreme bucket counts and the precision/bucket-count relationship.
#include "index/graphgrep_index.h"

#include <gtest/gtest.h>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "matching/brute_force.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sgq {
namespace {

using ::sgq::testing::MakePath;

GraphDatabase MakeDb(uint64_t seed) {
  SyntheticParams params;
  params.num_graphs = 18;
  params.vertices_per_graph = 15;
  params.degree = 2.5;
  params.num_labels = 4;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

TEST(GraphGrepTest, SingleBucketIsSoundButUseless) {
  // With one bucket every feature collides: the filter degenerates to a
  // total-path-count test — still sound (never drops answers), nearly
  // precision-free.
  const GraphDatabase db = MakeDb(1);
  GraphGrepOptions opts;
  opts.num_buckets = 1;
  GraphGrepIndex index(opts);
  ASSERT_TRUE(index.Build(db, Deadline::Infinite()));
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 4, &rng, &q)) continue;
    const auto candidates = index.FilterCandidates(q);
    for (GraphId g = 0; g < db.size(); ++g) {
      if (BruteForceContains(q, db.graph(g))) {
        EXPECT_TRUE(
            std::binary_search(candidates.begin(), candidates.end(), g));
      }
    }
  }
}

TEST(GraphGrepTest, MoreBucketsNeverHurtPrecision) {
  const GraphDatabase db = MakeDb(3);
  GraphGrepOptions small_opts, large_opts;
  small_opts.num_buckets = 8;
  large_opts.num_buckets = 1 << 14;
  GraphGrepIndex small(small_opts), large(large_opts);
  ASSERT_TRUE(small.Build(db, Deadline::Infinite()));
  ASSERT_TRUE(large.Build(db, Deadline::Infinite()));
  Rng rng(4);
  size_t small_total = 0, large_total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 5, &rng, &q)) continue;
    small_total += small.FilterCandidates(q).size();
    large_total += large.FilterCandidates(q).size();
  }
  // Aggregate candidate counts shrink (or tie) with more buckets. (The
  // per-query relation need not be monotone: a collision can inflate the
  // required count and accidentally prune, so we compare in aggregate.)
  EXPECT_LE(large_total, small_total);
}

TEST(GraphGrepTest, CountSemanticsMatchRepeatedFeatures) {
  // Two disjoint (0,1) edges in the query require count >= 2 in the data
  // even through the hash (same feature, same bucket). The index filter
  // does not require connected inputs, so the query is two bare edges.
  GraphDatabase db;
  db.Add(MakePath({0, 1}));                                   // one
  db.Add(sgq::testing::MakeGraph({0, 1, 0, 1},
                                 {{0, 1}, {2, 3}}));          // two
  GraphGrepIndex index;
  ASSERT_TRUE(index.Build(db, Deadline::Infinite()));
  const Graph q =
      sgq::testing::MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}});
  const auto candidates = index.FilterCandidates(q);
  EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), 1u));
  EXPECT_FALSE(std::binary_search(candidates.begin(), candidates.end(), 0u));
}

}  // namespace
}  // namespace sgq
