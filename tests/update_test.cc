// VersionedDb unit tests: publish/apply epoch progression, global-id
// stability and monotonicity, forced-id rules, order-preserving removes,
// FindLocal, the bounded delta ring (coverage, Publish cut, overflow), and
// snapshot immutability (readers pinned on an old version never observe a
// later mutation).
#include "update/db_version.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace sgq {
namespace {

using testing::MakePath;

Graph PathGraph(Label a, Label b) { return MakePath({a, b}); }

GraphDatabase ThreeGraphs() {
  GraphDatabase db;
  db.Add(PathGraph(0, 1));
  db.Add(PathGraph(1, 2));
  db.Add(PathGraph(2, 3));
  return db;
}

TEST(VersionedDbTest, PublishInstallsIdentityIdMap) {
  VersionedDb vdb;
  EXPECT_EQ(vdb.Current(), nullptr);
  auto v = vdb.Publish(ThreeGraphs(), {});
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v, vdb.Current());
  EXPECT_EQ(v->epoch, 1u);
  EXPECT_EQ(v->db.size(), 3u);
  EXPECT_TRUE(v->global_ids.empty());  // identity
  EXPECT_EQ(v->GlobalOf(2), 2u);
  EXPECT_EQ(v->next_global_id, 3u);
  GraphId local = 99;
  ASSERT_TRUE(v->FindLocal(1, &local));
  EXPECT_EQ(local, 1u);
  EXPECT_FALSE(v->FindLocal(3, &local));
}

TEST(VersionedDbTest, ApplyAddAssignsMonotoneIdsAndBumpsEpoch) {
  VersionedDb vdb;
  vdb.Publish(ThreeGraphs(), {});
  GraphId gid = 0;
  std::string error;
  auto v2 = vdb.ApplyAdd(PathGraph(4, 5), nullptr, &gid, &error);
  ASSERT_NE(v2, nullptr) << error;
  EXPECT_EQ(gid, 3u);
  EXPECT_EQ(v2->epoch, 2u);
  EXPECT_EQ(v2->db.size(), 4u);
  EXPECT_EQ(v2->GlobalOf(3), 3u);
  EXPECT_EQ(v2->next_global_id, 4u);
  auto v3 = vdb.ApplyAdd(PathGraph(5, 6), nullptr, &gid, &error);
  ASSERT_NE(v3, nullptr);
  EXPECT_EQ(gid, 4u);
  EXPECT_EQ(vdb.MutationsApplied(), 2u);
}

TEST(VersionedDbTest, ForcedIdMustKeepIdMapSorted) {
  VersionedDb vdb;
  vdb.Publish(ThreeGraphs(), {});
  GraphId gid = 0;
  std::string error;
  // Forcing an id below next_global_id would break the sorted map (or
  // reuse a retired id): rejected, state unchanged.
  const GraphId low = 1;
  EXPECT_EQ(vdb.ApplyAdd(PathGraph(4, 5), &low, &gid, &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(vdb.Current()->epoch, 1u);
  // A gap is fine (the router may have burned ids on failed sends); the
  // next free assignment continues above it.
  const GraphId high = 10;
  auto v = vdb.ApplyAdd(PathGraph(4, 5), &high, &gid, &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_EQ(gid, 10u);
  EXPECT_EQ(v->next_global_id, 11u);
  auto v2 = vdb.ApplyAdd(PathGraph(6, 7), nullptr, &gid, &error);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(gid, 11u);
}

TEST(VersionedDbTest, RemoveIsOrderPreservingAndIdsAreNeverReused) {
  VersionedDb vdb;
  vdb.Publish(ThreeGraphs(), {});
  std::string error;
  auto v = vdb.ApplyRemove(1, &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_EQ(v->db.size(), 2u);
  // Locals stay dense, the map stays strictly increasing: {0, 2}.
  EXPECT_EQ(v->GlobalOf(0), 0u);
  EXPECT_EQ(v->GlobalOf(1), 2u);
  GraphId local = 99;
  EXPECT_FALSE(v->FindLocal(1, &local));
  ASSERT_TRUE(v->FindLocal(2, &local));
  EXPECT_EQ(local, 1u);
  // Removing an id that is not live (never existed or already removed)
  // fails without a version bump.
  EXPECT_EQ(vdb.ApplyRemove(1, &error), nullptr);
  EXPECT_EQ(vdb.ApplyRemove(77, &error), nullptr);
  EXPECT_EQ(vdb.Current()->epoch, 2u);
  // The freed id is never handed out again.
  GraphId gid = 0;
  auto v2 = vdb.ApplyAdd(PathGraph(9, 9), nullptr, &gid, &error);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(gid, 3u);
}

TEST(VersionedDbTest, PinnedReadersNeverObserveLaterMutations) {
  VersionedDb vdb;
  vdb.Publish(ThreeGraphs(), {});
  const std::shared_ptr<const DbVersion> pinned = vdb.Current();
  GraphId gid = 0;
  std::string error;
  ASSERT_NE(vdb.ApplyAdd(PathGraph(4, 5), nullptr, &gid, &error), nullptr);
  ASSERT_NE(vdb.ApplyRemove(0, &error), nullptr);
  // The pinned snapshot is frozen: same size, same ids, same graphs.
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->db.size(), 3u);
  EXPECT_EQ(pinned->GlobalOf(0), 0u);
  EXPECT_EQ(pinned->db.graph(0).label(0), 0u);
  EXPECT_EQ(vdb.Current()->db.size(), 3u);  // 3 + 1 - 1
  EXPECT_EQ(vdb.Current()->GlobalOf(0), 1u);
}

TEST(VersionedDbTest, DeltaRingReplaysTheMutationChain) {
  VersionedDb vdb;
  vdb.Publish(ThreeGraphs(), {});
  GraphId gid = 0;
  std::string error;
  ASSERT_NE(vdb.ApplyAdd(PathGraph(7, 8), nullptr, &gid, &error), nullptr);
  ASSERT_NE(vdb.ApplyRemove(1, &error), nullptr);
  std::vector<DbDelta> deltas;
  ASSERT_TRUE(vdb.DeltasSince(1, 3, &deltas));
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].kind, DbDelta::Kind::kAdd);
  EXPECT_EQ(deltas[0].global_id, 3u);
  EXPECT_EQ(deltas[0].local_id, 3u);
  EXPECT_EQ(deltas[0].added.NumVertices(), 2u);
  EXPECT_EQ(deltas[1].kind, DbDelta::Kind::kRemove);
  EXPECT_EQ(deltas[1].global_id, 1u);
  EXPECT_EQ(deltas[1].local_id, 1u);
  // Prefixes and the empty range work too.
  ASSERT_TRUE(vdb.DeltasSince(2, 3, &deltas));
  EXPECT_EQ(deltas.size(), 1u);
  ASSERT_TRUE(vdb.DeltasSince(3, 3, &deltas));
  EXPECT_TRUE(deltas.empty());
}

TEST(VersionedDbTest, PublishCutsTheDeltaHistory) {
  VersionedDb vdb;
  vdb.Publish(ThreeGraphs(), {});
  GraphId gid = 0;
  std::string error;
  ASSERT_NE(vdb.ApplyAdd(PathGraph(7, 8), nullptr, &gid, &error), nullptr);
  auto v = vdb.Publish(ThreeGraphs(), {});  // RELOAD
  EXPECT_EQ(v->epoch, 3u);
  std::vector<DbDelta> deltas;
  // No chain leads across a full swap — engines must re-Prepare.
  EXPECT_FALSE(vdb.DeltasSince(1, 3, &deltas));
  EXPECT_FALSE(vdb.DeltasSince(2, 3, &deltas));
  EXPECT_TRUE(vdb.DeltasSince(3, 3, &deltas));  // trivially empty
}

TEST(VersionedDbTest, RingOverflowForcesFullRebuildPath) {
  VersionedDb vdb(/*max_deltas=*/4);
  vdb.Publish(ThreeGraphs(), {});
  GraphId gid = 0;
  std::string error;
  for (int i = 0; i < 6; ++i) {
    ASSERT_NE(vdb.ApplyAdd(PathGraph(1, 2), nullptr, &gid, &error), nullptr);
  }
  std::vector<DbDelta> deltas;
  // Epoch 1 fell off the ring (only the last 4 deltas are retained)...
  EXPECT_FALSE(vdb.DeltasSince(1, 7, &deltas));
  // ...but recent epochs are still coverable.
  ASSERT_TRUE(vdb.DeltasSince(3, 7, &deltas));
  EXPECT_EQ(deltas.size(), 4u);
}

}  // namespace
}  // namespace sgq
