// Metamorphic properties implied by Definition II.1/II.2, checked across
// engines:
//   (M1) query relaxation: removing an edge from q (keeping it connected)
//        can only grow the answer set: A(q) ⊆ A(q');
//   (M2) database growth: adding graphs never removes answers;
//   (M3) every answer graph really contains the query (witness check);
//   (M4) a query extracted from data graph G is always answered with G.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "graph/graph_utils.h"
#include "matching/brute_force.h"
#include "query/engine_factory.h"
#include "util/rng.h"

namespace sgq {
namespace {

GraphDatabase MakeDb(uint64_t seed) {
  SyntheticParams params;
  params.num_graphs = 25;
  params.vertices_per_graph = 22;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

// Removes one non-bridge edge of q; returns false if none exists.
bool RelaxQuery(const Graph& q, Rng* rng, Graph* out) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    for (VertexId u : q.Neighbors(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng->NextBounded(i)]);
  }
  for (const auto& victim : edges) {
    GraphBuilder builder;
    for (VertexId v = 0; v < q.NumVertices(); ++v) {
      builder.AddVertex(q.label(v));
    }
    for (const auto& e : edges) {
      if (e != victim) builder.AddEdge(e.first, e.second);
    }
    Graph candidate = builder.Build();
    if (IsConnected(candidate)) {
      *out = std::move(candidate);
      return true;
    }
  }
  return false;
}

class MetamorphicTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MetamorphicTest, RelaxationGrowsAnswerSet) {
  const GraphDatabase db = MakeDb(11);
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  Rng rng(3);
  int checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kDense, 8, &rng, &q)) continue;
    Graph relaxed;
    if (!RelaxQuery(q, &rng, &relaxed)) continue;
    const auto full = engine->Query(q).answers;
    const auto loose = engine->Query(relaxed).answers;
    EXPECT_TRUE(std::includes(loose.begin(), loose.end(), full.begin(),
                              full.end()))
        << GetParam() << " trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST_P(MetamorphicTest, DatabaseGrowthPreservesAnswers) {
  GraphDatabase db = MakeDb(12);
  Rng rng(4);
  Graph q;
  ASSERT_TRUE(GenerateQuery(db, QueryKind::kSparse, 6, &rng, &q));

  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  const auto before = engine->Query(q).answers;

  // Append five more graphs; old ids are unchanged by Add().
  std::vector<Label> labels = {0, 1, 2, 3};
  for (int i = 0; i < 5; ++i) {
    db.Add(GenerateRandomGraph(20, 3.0, labels, &rng));
  }
  // IFV engines must re-prepare after updates (their documented
  // limitation); vcFV engines keep working either way — re-prepare both to
  // test the common contract.
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  const auto after = engine->Query(q).answers;
  EXPECT_TRUE(
      std::includes(after.begin(), after.end(), before.begin(), before.end()))
      << GetParam();
}

TEST_P(MetamorphicTest, AnswersContainWitnesses) {
  const GraphDatabase db = MakeDb(13);
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kSparse, 5, &rng, &q)) continue;
    for (GraphId g : engine->Query(q).answers) {
      EXPECT_TRUE(BruteForceContains(q, db.graph(g)))
          << GetParam() << " returned non-containing graph " << g;
    }
  }
}

TEST_P(MetamorphicTest, ExtractedQueryFindsItsSource) {
  const GraphDatabase db = MakeDb(14);
  auto engine = MakeEngine(GetParam());
  ASSERT_TRUE(engine->Prepare(db, Deadline::Infinite()));
  Rng rng(6);
  int non_empty = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Graph q;
    if (!GenerateQuery(db, QueryKind::kDense, 6, &rng, &q)) continue;
    // The generator extracted q from SOME data graph, so at least one
    // answer must exist.
    const auto answers = engine->Query(q).answers;
    EXPECT_FALSE(answers.empty()) << GetParam() << " trial " << trial;
    non_empty += !answers.empty();
  }
  EXPECT_GT(non_empty, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MetamorphicTest,
    ::testing::Values("Grapes", "GGSX", "CT-Index", "CFQL", "CFL", "GraphQL",
                      "vcGrapes", "vcGGSX", "TurboIso", "CFQL-parallel"),
    [](const auto& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace sgq
