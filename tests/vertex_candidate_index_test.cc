// Tests for the degree/label-partitioned candidate index
// (index/vertex_candidate_index.h): exact equivalence with the full-scan
// LDF/NLF path, filter conservativeness, and the attach threshold.
#include "index/vertex_candidate_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/biggraph_gen.h"
#include "gen/graph_gen.h"
#include "graph/graph_utils.h"
#include "matching/candidate_space.h"
#include "util/rng.h"

namespace sgq {
namespace {

// Full-scan reference: the pre-index LdfNlfCandidatesInto body.
std::vector<VertexId> FullScanCandidates(const Graph& query,
                                         const Graph& data, VertexId u,
                                         bool use_nlf) {
  std::vector<VertexId> out;
  for (VertexId v : data.VerticesWithLabel(query.label(u))) {
    if (PassesDegreeNlf(query, data, u, v, use_nlf)) out.push_back(v);
  }
  return out;
}

Graph RandomQuery(uint32_t vertices, double degree, uint32_t labels,
                  uint64_t seed) {
  std::vector<Label> pool(labels);
  for (uint32_t l = 0; l < labels; ++l) pool[l] = l;
  Rng rng(seed);
  return GenerateRandomGraph(vertices, degree, pool, &rng);
}

TEST(VertexCandidateIndexTest, MatchesFullScanOnRandomGraphs) {
  PowerLawParams params;
  params.num_vertices = 3000;
  params.avg_degree = 10.0;
  params.num_labels = 12;
  params.seed = 7;
  const Graph data = GeneratePowerLawGraph(params);
  Graph indexed = data;
  indexed.SetCandidateIndex(VertexCandidateIndex::Build(indexed));

  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph query = RandomQuery(6, 2.5, params.num_labels, seed);
    for (VertexId u = 0; u < query.NumVertices(); ++u) {
      for (bool use_nlf : {false, true}) {
        const std::vector<VertexId> expected =
            FullScanCandidates(query, data, u, use_nlf);
        std::vector<VertexId> actual;
        LdfNlfCandidatesInto(query, indexed, u, use_nlf, &actual);
        EXPECT_EQ(expected, actual)
            << "seed " << seed << " u " << u << " nlf " << use_nlf;
      }
    }
  }
}

TEST(VertexCandidateIndexTest, CollectCandidatesIsConservativeAndSorted) {
  PowerLawParams params;
  params.num_vertices = 2000;
  params.avg_degree = 8.0;
  params.num_labels = 6;
  params.seed = 5;
  const Graph g = GeneratePowerLawGraph(params);
  const auto index = VertexCandidateIndex::Build(g);

  for (Label l = 0; l < params.num_labels; ++l) {
    for (uint32_t min_degree : {0u, 1u, 3u, 8u, 50u}) {
      std::vector<VertexId> got;
      index->CollectCandidates(l, min_degree, /*sig=*/0, &got);
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      // sig = 0 means no signature constraint: the result must be exactly
      // the label+degree slice.
      std::vector<VertexId> expected;
      for (VertexId v : g.VerticesWithLabel(l)) {
        if (g.degree(v) >= min_degree) expected.push_back(v);
      }
      EXPECT_EQ(expected, got) << "label " << l << " deg " << min_degree;
    }
  }
}

TEST(VertexCandidateIndexTest, SignatureNeverRejectsTrueCandidate) {
  PowerLawParams params;
  params.num_vertices = 1500;
  params.avg_degree = 8.0;
  params.num_labels = 100;  // force hashed signature bits (labels >= 64)
  params.label_skew = 0.5;
  params.seed = 9;
  const Graph data = GeneratePowerLawGraph(params);
  const auto index = VertexCandidateIndex::Build(data);

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph query = RandomQuery(5, 2.0, params.num_labels, seed);
    for (VertexId u = 0; u < query.NumVertices(); ++u) {
      const uint64_t sig =
          VertexCandidateIndex::SignatureOf(query.NeighborLabels(u));
      std::vector<VertexId> got;
      index->CollectCandidates(query.label(u), query.degree(u), sig, &got);
      // Every exact-NLF survivor of the full scan must be in the
      // signature-filtered set (superset property).
      for (VertexId v : FullScanCandidates(query, data, u, true)) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), v))
            << "signature dropped true candidate " << v;
      }
    }
  }
}

TEST(VertexCandidateIndexTest, CountWithLabelDegreeIsExact) {
  PowerLawParams params;
  params.num_vertices = 1200;
  params.avg_degree = 6.0;
  params.num_labels = 5;
  params.seed = 13;
  const Graph g = GeneratePowerLawGraph(params);
  const auto index = VertexCandidateIndex::Build(g);
  for (Label l = 0; l < params.num_labels + 1; ++l) {
    for (uint32_t min_degree : {0u, 1u, 2u, 5u, 9u, 1000u}) {
      uint32_t expected = 0;
      for (VertexId v : g.VerticesWithLabel(l)) {
        if (g.degree(v) >= min_degree) ++expected;
      }
      EXPECT_EQ(expected, index->CountWithLabelDegree(l, min_degree));
    }
    EXPECT_EQ(g.VerticesWithLabel(l).size(), index->BucketSize(l));
  }
}

TEST(VertexCandidateIndexTest, UnknownLabelYieldsNothing) {
  GraphBuilder b;
  b.AddVertex(2);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  const auto index = VertexCandidateIndex::Build(g);
  std::vector<VertexId> out;
  EXPECT_EQ(0u, index->CollectCandidates(7, 0, 0, &out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(0u, index->CountWithLabelDegree(7, 0));
  EXPECT_EQ(0u, index->BucketSize(7));
}

TEST(VertexCandidateIndexTest, AttachThresholdAndEnvOverride) {
  // The env override beats the explicit threshold by design (that is what
  // the SGQ_CANDIDATE_INDEX=on CI leg relies on), so the threshold
  // sub-cases must run without an ambient value.
  const char* ambient = ::getenv("SGQ_CANDIDATE_INDEX");
  const std::string saved = ambient != nullptr ? ambient : "";
  ::unsetenv("SGQ_CANDIDATE_INDEX");

  GraphDatabase db;
  db.Add(GeneratePowerLawGraph({.num_vertices = 64,
                                .avg_degree = 4.0,
                                .num_labels = 4,
                                .label_skew = 1.0,
                                .seed = 1}));
  db.Add(GeneratePowerLawGraph({.num_vertices = 512,
                                .avg_degree = 4.0,
                                .num_labels = 4,
                                .label_skew = 1.0,
                                .seed = 2}));

  // Threshold selects only the larger graph.
  EXPECT_EQ(1u, AttachCandidateIndexes(&db, 100));
  EXPECT_EQ(nullptr, db.graph(0).candidate_index());
  EXPECT_NE(nullptr, db.graph(1).candidate_index());

  // UINT32_MAX disables.
  GraphDatabase db2;
  db2.Add(db.graph(1));
  db2.mutable_graph(0).SetCandidateIndex(nullptr);
  EXPECT_EQ(0u, AttachCandidateIndexes(&db2, UINT32_MAX));
  EXPECT_EQ(nullptr, db2.graph(0).candidate_index());

  // SGQ_CANDIDATE_INDEX=on indexes everything, =off nothing.
  ::setenv("SGQ_CANDIDATE_INDEX", "on", 1);
  EXPECT_EQ(1u, AttachCandidateIndexes(&db2, UINT32_MAX));
  EXPECT_NE(nullptr, db2.graph(0).candidate_index());
  db2.mutable_graph(0).SetCandidateIndex(nullptr);
  ::setenv("SGQ_CANDIDATE_INDEX", "off", 1);
  EXPECT_EQ(0u, AttachCandidateIndexes(&db2, 0));
  EXPECT_EQ(nullptr, db2.graph(0).candidate_index());
  if (ambient != nullptr) {
    ::setenv("SGQ_CANDIDATE_INDEX", saved.c_str(), 1);
  } else {
    ::unsetenv("SGQ_CANDIDATE_INDEX");
  }
}

TEST(VertexCandidateIndexTest, MemoryBytesScalesWithVertices) {
  const Graph g = GeneratePowerLawGraph({.num_vertices = 1000,
                                         .avg_degree = 6.0,
                                         .num_labels = 8,
                                         .label_skew = 1.0,
                                         .seed = 4});
  const auto index = VertexCandidateIndex::Build(g);
  EXPECT_EQ(1000u, index->NumVertices());
  // ids + degrees + signatures = 16 bytes/vertex plus small bucket tables.
  EXPECT_GE(index->MemoryBytes(), 16000u);
  EXPECT_LT(index->MemoryBytes(), 32000u);
}

}  // namespace
}  // namespace sgq
