// Satellite of the thread-pool PR: the parallel engine must be bit-for-bit
// deterministic. Answers, num_candidates and si_tests come from per-graph
// predicates that do not depend on how the scan is partitioned, so every
// (threads, chunk) combination must reproduce the serial vcFV result exactly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "matching/cfql.h"
#include "matching/matcher.h"
#include "query/engine_factory.h"
#include "query/parallel_vcfv_engine.h"
#include "util/intersect.h"
#include "util/rng.h"

namespace sgq {
namespace {

GraphDatabase MakeDb(uint64_t seed, uint32_t graphs) {
  SyntheticParams params;
  params.num_graphs = graphs;
  params.vertices_per_graph = 30;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

std::vector<Graph> MakeQueries(const GraphDatabase& db, int count,
                               uint64_t seed) {
  std::vector<Graph> queries;
  Rng rng(seed);
  while (static_cast<int>(queries.size()) < count) {
    Graph q;
    if (GenerateQuery(db, queries.size() % 2 == 0 ? QueryKind::kSparse
                                                  : QueryKind::kDense,
                      6, &rng, &q)) {
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

TEST(ParallelDeterminismTest, MatchesSerialAcrossThreadAndChunkCounts) {
  const GraphDatabase db = MakeDb(11, 72);
  const std::vector<Graph> queries = MakeQueries(db, 6, 23);

  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  std::vector<QueryResult> expected;
  for (const Graph& q : queries) expected.push_back(serial->Query(q));

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (uint32_t chunk : {0u, 1u, 3u, 17u, 1000u}) {
      ParallelVcfvEngine parallel(
          "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); },
          threads, chunk);
      ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
      for (size_t i = 0; i < queries.size(); ++i) {
        const QueryResult actual =
            parallel.Query(queries[i], Deadline::Infinite());
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " chunk=" << chunk
                     << " query=" << i);
        // Byte-identical answer sets (both sorted GraphId vectors).
        EXPECT_EQ(actual.answers, expected[i].answers);
        // Identical filtering/verification work, not just identical answers.
        EXPECT_EQ(actual.stats.num_candidates,
                  expected[i].stats.num_candidates);
        EXPECT_EQ(actual.stats.si_tests, expected[i].stats.si_tests);
        EXPECT_EQ(actual.stats.num_answers, expected[i].stats.num_answers);
        EXPECT_FALSE(actual.stats.timed_out);
      }
    }
  }
}

TEST(ParallelDeterminismTest, RepeatedQueriesOnOneEngineAreStable) {
  // Workspace reuse must not leak state between queries: asking the same
  // engine the same queries twice (warm workspaces the second time) must
  // reproduce the cold-run results.
  const GraphDatabase db = MakeDb(5, 48);
  const std::vector<Graph> queries = MakeQueries(db, 4, 31);
  ParallelVcfvEngine engine(
      "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); }, 4, 5);
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));

  std::vector<QueryResult> first;
  for (const Graph& q : queries) {
    first.push_back(engine.Query(q, Deadline::Infinite()));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult again = engine.Query(queries[i], Deadline::Infinite());
    SCOPED_TRACE(::testing::Message() << "query=" << i);
    EXPECT_EQ(again.answers, first[i].answers);
    EXPECT_EQ(again.stats.num_candidates, first[i].stats.num_candidates);
    EXPECT_EQ(again.stats.si_tests, first[i].stats.si_tests);
  }
}

TEST(ParallelDeterminismTest, ExtensionPathsAgreeUnderParallelism) {
  // The intersection-based extension step must not perturb parallel
  // determinism: every extension path (and the scalar-kernel fallback)
  // through the parallel engine reproduces the serial probe-path result.
  const ExtensionPath saved_path = DefaultExtensionPath();
  const bool saved_simd = IntersectSimdEnabled();
  const GraphDatabase db = MakeDb(19, 56);
  const std::vector<Graph> queries = MakeQueries(db, 4, 37);

  SetDefaultExtensionPath(ExtensionPath::kProbe);
  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  std::vector<QueryResult> expected;
  for (const Graph& q : queries) expected.push_back(serial->Query(q));

  struct Config {
    ExtensionPath path;
    bool simd;
  };
  for (const Config& config :
       {Config{ExtensionPath::kIntersect, true},
        Config{ExtensionPath::kAdaptive, true},
        Config{ExtensionPath::kIntersect, false}}) {
    SetDefaultExtensionPath(config.path);
    SetIntersectSimdEnabled(config.simd);
    ParallelVcfvEngine parallel(
        "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); }, 4, 3);
    ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResult actual =
          parallel.Query(queries[i], Deadline::Infinite());
      SCOPED_TRACE(::testing::Message()
                   << "path=" << static_cast<int>(config.path)
                   << " simd=" << config.simd << " query=" << i);
      EXPECT_EQ(actual.answers, expected[i].answers);
      EXPECT_EQ(actual.stats.num_candidates,
                expected[i].stats.num_candidates);
      EXPECT_EQ(actual.stats.si_tests, expected[i].stats.si_tests);
    }
  }
  SetDefaultExtensionPath(saved_path);
  SetIntersectSimdEnabled(saved_simd);
}

TEST(ParallelDeterminismTest, WorkspaceHitRateClimbsAfterWarmup) {
  const GraphDatabase db = MakeDb(7, 64);
  const std::vector<Graph> queries = MakeQueries(db, 3, 13);
  ParallelVcfvEngine engine(
      "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); }, 4);
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));

  // A slot allocates at most once over the engine's lifetime (its first
  // graph); every other Filter() is a hit. Which query a slot first
  // participates in depends on scheduling, so the bound is cumulative.
  uint64_t hits = 0, misses = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult r = engine.Query(queries[i], Deadline::Infinite());
    EXPECT_EQ(r.stats.ws_filter_hits + r.stats.ws_filter_misses,
              static_cast<uint64_t>(db.size()))
        << "query " << i;
    hits += r.stats.ws_filter_hits;
    misses += r.stats.ws_filter_misses;
  }
  EXPECT_GT(misses, 0u);  // the first graph of the first active slot
  // Slots = pool threads + the participating caller.
  EXPECT_LE(misses, engine.num_threads() + 1u);
  // The acceptance bar for the workload: >90% of Filter() calls recycled.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.9);
}

}  // namespace
}  // namespace sgq
