// Satellite of the thread-pool PR: the parallel engine must be bit-for-bit
// deterministic. Answers, num_candidates and si_tests come from per-graph
// predicates that do not depend on how the scan is partitioned, so every
// (threads, chunk) combination must reproduce the serial vcFV result exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "gen/graph_gen.h"
#include "gen/query_gen.h"
#include "matching/cfl.h"
#include "matching/cfql.h"
#include "matching/matcher.h"
#include "matching/parallel_backtrack.h"
#include "query/engine_factory.h"
#include "query/parallel_vcfv_engine.h"
#include "util/intersect.h"
#include "util/rng.h"

namespace sgq {
namespace {

GraphDatabase MakeDb(uint64_t seed, uint32_t graphs) {
  SyntheticParams params;
  params.num_graphs = graphs;
  params.vertices_per_graph = 30;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = seed;
  return GenerateSyntheticDatabase(params);
}

std::vector<Graph> MakeQueries(const GraphDatabase& db, int count,
                               uint64_t seed) {
  std::vector<Graph> queries;
  Rng rng(seed);
  while (static_cast<int>(queries.size()) < count) {
    Graph q;
    if (GenerateQuery(db, queries.size() % 2 == 0 ? QueryKind::kSparse
                                                  : QueryKind::kDense,
                      6, &rng, &q)) {
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

TEST(ParallelDeterminismTest, MatchesSerialAcrossThreadAndChunkCounts) {
  const GraphDatabase db = MakeDb(11, 72);
  const std::vector<Graph> queries = MakeQueries(db, 6, 23);

  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  std::vector<QueryResult> expected;
  for (const Graph& q : queries) expected.push_back(serial->Query(q));

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (uint32_t chunk : {0u, 1u, 3u, 17u, 1000u}) {
      ParallelVcfvEngine parallel(
          "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); },
          threads, chunk);
      ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
      for (size_t i = 0; i < queries.size(); ++i) {
        const QueryResult actual =
            parallel.Query(queries[i], Deadline::Infinite());
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " chunk=" << chunk
                     << " query=" << i);
        // Byte-identical answer sets (both sorted GraphId vectors).
        EXPECT_EQ(actual.answers, expected[i].answers);
        // Identical filtering/verification work, not just identical answers.
        EXPECT_EQ(actual.stats.num_candidates,
                  expected[i].stats.num_candidates);
        EXPECT_EQ(actual.stats.si_tests, expected[i].stats.si_tests);
        EXPECT_EQ(actual.stats.num_answers, expected[i].stats.num_answers);
        EXPECT_FALSE(actual.stats.timed_out);
      }
    }
  }
}

TEST(ParallelDeterminismTest, RepeatedQueriesOnOneEngineAreStable) {
  // Workspace reuse must not leak state between queries: asking the same
  // engine the same queries twice (warm workspaces the second time) must
  // reproduce the cold-run results.
  const GraphDatabase db = MakeDb(5, 48);
  const std::vector<Graph> queries = MakeQueries(db, 4, 31);
  ParallelVcfvEngine engine(
      "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); }, 4, 5);
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));

  std::vector<QueryResult> first;
  for (const Graph& q : queries) {
    first.push_back(engine.Query(q, Deadline::Infinite()));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult again = engine.Query(queries[i], Deadline::Infinite());
    SCOPED_TRACE(::testing::Message() << "query=" << i);
    EXPECT_EQ(again.answers, first[i].answers);
    EXPECT_EQ(again.stats.num_candidates, first[i].stats.num_candidates);
    EXPECT_EQ(again.stats.si_tests, first[i].stats.si_tests);
  }
}

TEST(ParallelDeterminismTest, ExtensionPathsAgreeUnderParallelism) {
  // The intersection-based extension step must not perturb parallel
  // determinism: every extension path (and the scalar-kernel fallback)
  // through the parallel engine reproduces the serial probe-path result.
  const ExtensionPath saved_path = DefaultExtensionPath();
  const bool saved_simd = IntersectSimdEnabled();
  const GraphDatabase db = MakeDb(19, 56);
  const std::vector<Graph> queries = MakeQueries(db, 4, 37);

  SetDefaultExtensionPath(ExtensionPath::kProbe);
  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  std::vector<QueryResult> expected;
  for (const Graph& q : queries) expected.push_back(serial->Query(q));

  struct Config {
    ExtensionPath path;
    bool simd;
  };
  for (const Config& config :
       {Config{ExtensionPath::kIntersect, true},
        Config{ExtensionPath::kAdaptive, true},
        Config{ExtensionPath::kIntersect, false}}) {
    SetDefaultExtensionPath(config.path);
    SetIntersectSimdEnabled(config.simd);
    ParallelVcfvEngine parallel(
        "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); }, 4, 3);
    ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResult actual =
          parallel.Query(queries[i], Deadline::Infinite());
      SCOPED_TRACE(::testing::Message()
                   << "path=" << static_cast<int>(config.path)
                   << " simd=" << config.simd << " query=" << i);
      EXPECT_EQ(actual.answers, expected[i].answers);
      EXPECT_EQ(actual.stats.num_candidates,
                expected[i].stats.num_candidates);
      EXPECT_EQ(actual.stats.si_tests, expected[i].stats.si_tests);
    }
  }
  SetDefaultExtensionPath(saved_path);
  SetIntersectSimdEnabled(saved_simd);
}

TEST(ParallelDeterminismTest, WorkspaceHitRateClimbsAfterWarmup) {
  const GraphDatabase db = MakeDb(7, 64);
  const std::vector<Graph> queries = MakeQueries(db, 3, 13);
  ParallelVcfvEngine engine(
      "CFQL-parallel", [] { return std::make_unique<CfqlMatcher>(); }, 4);
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));

  // A slot allocates at most once over the engine's lifetime (its first
  // graph); every other Filter() is a hit. Which query a slot first
  // participates in depends on scheduling, so the bound is cumulative.
  uint64_t hits = 0, misses = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult r = engine.Query(queries[i], Deadline::Infinite());
    EXPECT_EQ(r.stats.ws_filter_hits + r.stats.ws_filter_misses,
              static_cast<uint64_t>(db.size()))
        << "query " << i;
    hits += r.stats.ws_filter_hits;
    misses += r.stats.ws_filter_misses;
  }
  EXPECT_GT(misses, 0u);  // the first graph of the first active slot
  // Slots = pool threads + the participating caller.
  EXPECT_LE(misses, engine.num_threads() + 1u);
  // The acceptance bar for the workload: >90% of Filter() calls recycled.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.9);
}

// ---- intra-query stealing (this PR's tentpole) -----------------------------

TEST(ParallelDeterminismTest, IntraStealingMatchesSerialAcrossKnobs) {
  // heavy_threshold=1 routes EVERY enumeration through the StealScheduler,
  // so this sweep exercises the split/steal/merge machinery on each of the
  // workload's graphs rather than only the occasional heavy one.
  const GraphDatabase db = MakeDb(11, 72);
  const std::vector<Graph> queries = MakeQueries(db, 6, 23);

  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  std::vector<QueryResult> expected;
  for (const Graph& q : queries) expected.push_back(serial->Query(q));

  for (uint32_t threads : {1u, 2u, 4u}) {
    for (uint32_t steal_chunk : {1u, 3u, 16u}) {
      IntraQueryConfig intra;
      intra.enabled = true;
      intra.steal_chunk = steal_chunk;
      intra.heavy_threshold = 1;
      ParallelVcfvEngine parallel(
          "CFQL-parallel-intra", [] { return std::make_unique<CfqlMatcher>(); },
          threads, /*chunk_size=*/3, intra);
      ASSERT_TRUE(parallel.intra_enabled());
      ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
      for (size_t i = 0; i < queries.size(); ++i) {
        const QueryResult actual =
            parallel.Query(queries[i], Deadline::Infinite());
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " steal_chunk=" << steal_chunk
                     << " query=" << i);
        EXPECT_EQ(actual.answers, expected[i].answers);
        EXPECT_EQ(actual.stats.num_candidates,
                  expected[i].stats.num_candidates);
        EXPECT_EQ(actual.stats.si_tests, expected[i].stats.si_tests);
        EXPECT_FALSE(actual.stats.timed_out);
      }
    }
  }
}

TEST(ParallelDeterminismTest, IntraStealingExtensionPathsAgree) {
  const ExtensionPath saved_path = DefaultExtensionPath();
  const GraphDatabase db = MakeDb(19, 56);
  const std::vector<Graph> queries = MakeQueries(db, 4, 37);

  SetDefaultExtensionPath(ExtensionPath::kProbe);
  auto serial = MakeEngine("CFQL");
  ASSERT_TRUE(serial->Prepare(db, Deadline::Infinite()));
  std::vector<QueryResult> expected;
  for (const Graph& q : queries) expected.push_back(serial->Query(q));

  for (const ExtensionPath path :
       {ExtensionPath::kProbe, ExtensionPath::kIntersect,
        ExtensionPath::kAdaptive}) {
    SetDefaultExtensionPath(path);
    IntraQueryConfig intra;
    intra.enabled = true;
    intra.steal_chunk = 2;
    intra.heavy_threshold = 1;
    ParallelVcfvEngine parallel(
        "CFQL-parallel-intra", [] { return std::make_unique<CfqlMatcher>(); },
        4, 3, intra);
    ASSERT_TRUE(parallel.Prepare(db, Deadline::Infinite()));
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResult actual =
          parallel.Query(queries[i], Deadline::Infinite());
      SCOPED_TRACE(::testing::Message() << "path=" << static_cast<int>(path)
                                        << " query=" << i);
      EXPECT_EQ(actual.answers, expected[i].answers);
      EXPECT_EQ(actual.stats.num_candidates, expected[i].stats.num_candidates);
      EXPECT_EQ(actual.stats.si_tests, expected[i].stats.si_tests);
    }
  }
  SetDefaultExtensionPath(saved_path);
}

// Scheduler-level determinism: the merged embedding SEQUENCE (not just the
// count) must be bit-identical to serial BacktrackOverCandidates for every
// (executors, chunk, limit) combination, including limits that force
// truncation mid-merge.
TEST(ParallelDeterminismTest, StealSchedulerEmbeddingSequencesBitIdentical) {
  Rng rng(99);
  std::vector<Label> labels{0, 1, 2};
  GraphDatabase db;
  db.Add(GenerateRandomGraph(300, 8.0, labels, &rng));
  const Graph& data = db.graph(0);
  Graph query;
  while (!GenerateQuery(db, QueryKind::kDense, 6, &rng, &query)) {
  }
  const CflMatcher matcher;
  const auto filtered = matcher.Filter(query, data);
  ASSERT_TRUE(filtered->Passed());
  const std::vector<VertexId> order = JoinBasedOrder(query, filtered->phi);
  ASSERT_GT(filtered->phi.set(order[0]).size(), 1u);

  // Serial reference: full enumeration, flat embedding stream.
  MatchWorkspace serial_ws;
  std::vector<VertexId> serial_all;
  const EnumerateResult serial_full = BacktrackOverCandidates(
      query, data, filtered->phi, order,
      std::numeric_limits<uint64_t>::max(), nullptr,
      [&serial_all](const std::vector<VertexId>& m) {
        serial_all.insert(serial_all.end(), m.begin(), m.end());
        return true;
      },
      &serial_ws, DefaultExtensionPath());
  ASSERT_GT(serial_full.embeddings, 10u);
  const size_t stride = query.NumVertices();

  for (const uint64_t limit : {uint64_t{1}, uint64_t{7}, serial_full.embeddings}) {
    // Serial truncated reference for this limit.
    const std::vector<VertexId> serial_flat(
        serial_all.begin(), serial_all.begin() + limit * stride);
    for (const uint32_t executors : {2u, 4u}) {
      for (const uint32_t chunk : {1u, 2u, 5u}) {
        SCOPED_TRACE(::testing::Message() << "limit=" << limit << " executors="
                                          << executors << " chunk=" << chunk);
        StealConfig config;
        config.chunk = chunk;
        config.heavy_threshold = 1;
        StealScheduler sched(executors, config);
        std::atomic<bool> done{false};
        std::vector<std::thread> helpers;
        for (uint32_t t = 1; t < executors; ++t) {
          helpers.emplace_back([&sched, &done, t] {
            MatchWorkspace helper_ws;
            while (!done.load(std::memory_order_acquire)) {
              if (!sched.TryHelp(t, &helper_ws)) std::this_thread::yield();
            }
          });
        }
        std::vector<VertexId> steal_flat;
        MatchWorkspace owner_ws;
        const EnumerateResult stolen = sched.Enumerate(
            0, query, data, filtered->phi, order, limit, Deadline::Infinite(),
            [&steal_flat](const std::vector<VertexId>& m) {
              steal_flat.insert(steal_flat.end(), m.begin(), m.end());
              return true;
            },
            &owner_ws, DefaultExtensionPath());
        done.store(true, std::memory_order_release);
        for (std::thread& h : helpers) h.join();
        EXPECT_EQ(stolen.embeddings, limit);
        EXPECT_FALSE(stolen.aborted);
        EXPECT_EQ(steal_flat, serial_flat);
      }
    }
  }
}

TEST(ParallelDeterminismTest, StealSchedulerPreExpiredDeadlineAborts) {
  Rng rng(7);
  std::vector<Label> labels{0, 1};
  GraphDatabase db;
  db.Add(GenerateRandomGraph(200, 6.0, labels, &rng));
  const Graph& data = db.graph(0);
  Graph query;
  while (!GenerateQuery(db, QueryKind::kSparse, 5, &rng, &query)) {
  }
  const CflMatcher matcher;
  const auto filtered = matcher.Filter(query, data);
  ASSERT_TRUE(filtered->Passed());
  const std::vector<VertexId> order = JoinBasedOrder(query, filtered->phi);

  StealScheduler sched(2, StealConfig{});
  MatchWorkspace ws;
  // Deterministic regardless of thread timing: an already-expired deadline
  // aborts before any task runs, every time.
  for (int rep = 0; rep < 3; ++rep) {
    uint64_t calls = 0;
    const EnumerateResult er = sched.Enumerate(
        0, query, data, filtered->phi, order,
        std::numeric_limits<uint64_t>::max(), Deadline::AfterSeconds(-1.0),
        [&calls](const std::vector<VertexId>&) {
          ++calls;
          return true;
        },
        &ws, DefaultExtensionPath());
    EXPECT_TRUE(er.aborted);
    EXPECT_EQ(er.embeddings, 0u);
    EXPECT_EQ(calls, 0u);
  }
}

TEST(ParallelDeterminismTest, IntraStealingReportsTaskStats) {
  const GraphDatabase db = MakeDb(3, 40);
  const std::vector<Graph> queries = MakeQueries(db, 3, 17);
  IntraQueryConfig intra;
  intra.enabled = true;
  intra.heavy_threshold = 1;  // every enumeration splits -> tasks guaranteed
  intra.steal_chunk = 1;
  ParallelVcfvEngine engine(
      "CFQL-parallel-intra", [] { return std::make_unique<CfqlMatcher>(); }, 4,
      2, intra);
  ASSERT_TRUE(engine.Prepare(db, Deadline::Infinite()));

  uint64_t spawned = 0;
  for (const Graph& q : queries) {
    const QueryResult r = engine.Query(q, Deadline::Infinite());
    EXPECT_FALSE(r.stats.timed_out);
    spawned += r.stats.tasks_spawned;
    // Counters drain per query — stolen/aborted never exceed spawned.
    EXPECT_LE(r.stats.tasks_stolen + r.stats.tasks_aborted,
              r.stats.tasks_spawned);
  }
  EXPECT_GT(spawned, 0u);
}

}  // namespace
}  // namespace sgq
