#include "gen/graph_gen.h"

#include <gtest/gtest.h>

#include "gen/dataset_profiles.h"
#include "gen/query_gen.h"
#include "graph/graph_utils.h"
#include "util/rng.h"

namespace sgq {
namespace {

TEST(GraphGenTest, RespectsVertexCountAndConnectivity) {
  Rng rng(1);
  std::vector<Label> labels = {0, 1, 2, 3};
  const Graph g = GenerateRandomGraph(50, 4.0, labels, &rng);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumEdges(), 100u);  // 50 * 4 / 2
  EXPECT_TRUE(IsConnected(g));
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_LT(g.label(v), 4u);
}

TEST(GraphGenTest, DenseGraphCompletes) {
  Rng rng(2);
  std::vector<Label> labels = {0};
  // degree n-1 -> complete graph.
  const Graph g = GenerateRandomGraph(12, 11.0, labels, &rng);
  EXPECT_EQ(g.NumEdges(), 66u);
}

TEST(GraphGenTest, DegreeBeyondCompleteIsClamped) {
  Rng rng(3);
  std::vector<Label> labels = {0};
  const Graph g = GenerateRandomGraph(5, 100.0, labels, &rng);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(GraphGenTest, SparseBudgetSkipsSpanningTree) {
  Rng rng(4);
  std::vector<Label> labels = {0};
  // 10 vertices, degree 0.4 -> 2 edges < 9: a forest with 2 edges.
  const Graph g = GenerateRandomGraph(10, 0.4, labels, &rng);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphGenTest, SingleVertex) {
  Rng rng(5);
  std::vector<Label> labels = {7};
  const Graph g = GenerateRandomGraph(1, 0.0, labels, &rng);
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(SyntheticDatabaseTest, MatchesParameters) {
  SyntheticParams params;
  params.num_graphs = 40;
  params.vertices_per_graph = 30;
  params.degree = 4.0;
  params.num_labels = 5;
  params.size_jitter = 0.0;
  params.seed = 11;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  ASSERT_EQ(db.size(), 40u);
  const DatabaseStats stats = db.ComputeStats();
  EXPECT_DOUBLE_EQ(stats.avg_vertices_per_graph, 30.0);
  EXPECT_NEAR(stats.avg_degree_per_graph, 4.0, 0.2);
  EXPECT_LE(stats.num_distinct_labels, 5u);
}

TEST(SyntheticDatabaseTest, Deterministic) {
  SyntheticParams params;
  params.num_graphs = 5;
  params.vertices_per_graph = 20;
  params.seed = 3;
  const GraphDatabase a = GenerateSyntheticDatabase(params);
  const GraphDatabase b = GenerateSyntheticDatabase(params);
  ASSERT_EQ(a.size(), b.size());
  for (GraphId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i).NumVertices(), b.graph(i).NumVertices());
    EXPECT_EQ(a.graph(i).NumEdges(), b.graph(i).NumEdges());
  }
}

TEST(SyntheticDatabaseTest, LabelsPerGraphRestrictsUniverse) {
  SyntheticParams params;
  params.num_graphs = 20;
  params.vertices_per_graph = 50;
  params.num_labels = 40;
  params.labels_per_graph = 4;
  params.seed = 9;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  const DatabaseStats stats = db.ComputeStats();
  EXPECT_LT(stats.avg_labels_per_graph, 8.0);
  EXPECT_GE(stats.avg_labels_per_graph, 1.0);
}

TEST(QueryGenTest, SparseQueriesHaveExactEdgeCountAndAreConnected) {
  SyntheticParams params;
  params.num_graphs = 10;
  params.vertices_per_graph = 40;
  params.degree = 5.0;
  params.seed = 21;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  const QuerySet set = GenerateQuerySet(db, QueryKind::kSparse, 8, 25, 1);
  EXPECT_EQ(set.name, "Q_8S");
  EXPECT_GE(set.queries.size(), 20u);
  for (const Graph& q : set.queries) {
    EXPECT_EQ(q.NumEdges(), 8u);
    EXPECT_TRUE(IsConnected(q));
  }
}

TEST(QueryGenTest, DenseQueriesAreDenser) {
  SyntheticParams params;
  params.num_graphs = 10;
  params.vertices_per_graph = 60;
  params.degree = 8.0;
  params.seed = 22;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  const QuerySet sparse = GenerateQuerySet(db, QueryKind::kSparse, 16, 25, 2);
  const QuerySet dense = GenerateQuerySet(db, QueryKind::kDense, 16, 25, 2);
  ASSERT_GE(sparse.queries.size(), 20u);
  ASSERT_GE(dense.queries.size(), 20u);
  for (const Graph& q : dense.queries) {
    EXPECT_EQ(q.NumEdges(), 16u);
    EXPECT_TRUE(IsConnected(q));
  }
  const QuerySetStats ss = ComputeQuerySetStats(sparse);
  const QuerySetStats ds = ComputeQuerySetStats(dense);
  // Table V trend: BFS-extracted queries have fewer vertices (=> higher
  // degree) than random-walk queries of the same edge count.
  EXPECT_LT(ds.avg_vertices, ss.avg_vertices);
  EXPECT_GT(ds.avg_degree, ss.avg_degree);
}

TEST(QueryGenTest, QueriesAlwaysMatchTheirSourceDatabaseSomewhere) {
  // Every generated query is a subgraph of some data graph by construction;
  // its label set must exist in the database.
  SyntheticParams params;
  params.num_graphs = 6;
  params.vertices_per_graph = 30;
  params.degree = 4.0;
  params.num_labels = 6;
  params.seed = 30;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  const QuerySet set = GenerateQuerySet(db, QueryKind::kSparse, 4, 10, 5);
  for (const Graph& q : set.queries) {
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      EXPECT_LT(q.label(u), params.num_labels);
    }
  }
}

TEST(QueryGenTest, FailsGracefullyOnTinyDatabase) {
  GraphDatabase db;
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  db.Add(b.Build());
  Rng rng(1);
  Graph q;
  // 32-edge query cannot come out of a 1-edge graph.
  EXPECT_FALSE(GenerateQuery(db, QueryKind::kSparse, 32, &rng, &q));
  // 1-edge query can.
  EXPECT_TRUE(GenerateQuery(db, QueryKind::kSparse, 1, &rng, &q));
  EXPECT_EQ(q.NumEdges(), 1u);
}

TEST(QueryGenTest, StandardBatteryShape) {
  SyntheticParams params;
  params.num_graphs = 8;
  params.vertices_per_graph = 50;
  params.degree = 6.0;
  params.seed = 40;
  const GraphDatabase db = GenerateSyntheticDatabase(params);
  const auto sets = GenerateStandardQuerySets(db, 5, 7);
  ASSERT_EQ(sets.size(), 8u);
  EXPECT_EQ(sets[0].name, "Q_4S");
  EXPECT_EQ(sets[3].name, "Q_32S");
  EXPECT_EQ(sets[4].name, "Q_4D");
  EXPECT_EQ(sets[7].name, "Q_32D");
}

TEST(DatasetProfilesTest, ProfilesMatchTableFour) {
  const auto& profiles = RealWorldProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(ProfileByName("AIDS").num_graphs, 40000u);
  EXPECT_EQ(ProfileByName("PDBS").num_labels, 10u);
  EXPECT_EQ(ProfileByName("PCM").avg_vertices, 377u);
  EXPECT_NEAR(ProfileByName("PPI").avg_degree, 10.87, 1e-9);
}

TEST(DatasetProfilesTest, StandInScalesAndPreservesRegime) {
  const GraphDatabase aids =
      GenerateStandIn(ProfileByName("AIDS"), 0.005, 1.0, 1);
  EXPECT_EQ(aids.size(), 200u);
  const DatabaseStats stats = aids.ComputeStats();
  EXPECT_NEAR(stats.avg_vertices_per_graph, 45.0, 5.0);
  EXPECT_NEAR(stats.avg_degree_per_graph, 2.09, 0.5);
  EXPECT_LT(stats.avg_labels_per_graph, 10.0);

  const GraphDatabase ppi = GenerateStandIn(ProfileByName("PPI"), 0.5, 0.1, 2);
  EXPECT_EQ(ppi.size(), 10u);
  EXPECT_NEAR(ppi.ComputeStats().avg_degree_per_graph, 10.87, 2.0);
}

}  // namespace
}  // namespace sgq
