// Chase-Lev deque (util/work_stealing.h): owner LIFO semantics, thief FIFO
// semantics, buffer growth, and — under the tsan CTest label — the owner
// push/pop vs. concurrent-stealers races. The conservation checks (every
// pushed item taken exactly once, by exactly one taker) are the properties
// the intra-query scheduler's task accounting depends on.
#include "util/work_stealing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace sgq {
namespace {

TEST(WorkStealingDequeTest, PopIsLifo) {
  WorkStealingDeque<int> dq;
  for (int i = 0; i < 10; ++i) dq.PushBottom(i);
  for (int i = 9; i >= 0; --i) {
    int out = -1;
    ASSERT_TRUE(dq.PopBottom(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(dq.PopBottom(&out));
}

TEST(WorkStealingDequeTest, StealIsFifo) {
  WorkStealingDeque<int> dq;
  for (int i = 0; i < 10; ++i) dq.PushBottom(i);
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    ASSERT_EQ(dq.Steal(&out), StealOutcome::kSuccess);
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_EQ(dq.Steal(&out), StealOutcome::kEmpty);
}

TEST(WorkStealingDequeTest, EmptyDequeRefusesBothEnds) {
  WorkStealingDeque<int> dq;
  int out = -1;
  EXPECT_TRUE(dq.Empty());
  EXPECT_EQ(dq.Size(), 0u);
  EXPECT_FALSE(dq.PopBottom(&out));
  EXPECT_EQ(dq.Steal(&out), StealOutcome::kEmpty);
  // Emptied-after-use behaves like fresh.
  dq.PushBottom(7);
  ASSERT_TRUE(dq.PopBottom(&out));
  EXPECT_FALSE(dq.PopBottom(&out));
  EXPECT_EQ(dq.Steal(&out), StealOutcome::kEmpty);
}

TEST(WorkStealingDequeTest, OwnerAndThiefInterleave) {
  WorkStealingDeque<int> dq;
  for (int i = 0; i < 4; ++i) dq.PushBottom(i);  // bottom: 3, top: 0
  int out = -1;
  ASSERT_EQ(dq.Steal(&out), StealOutcome::kSuccess);  // oldest
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(dq.PopBottom(&out));  // freshest
  EXPECT_EQ(out, 3);
  ASSERT_EQ(dq.Steal(&out), StealOutcome::kSuccess);
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(dq.PopBottom(&out));  // last element, owner wins the CAS race
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(dq.PopBottom(&out));
  EXPECT_EQ(dq.Steal(&out), StealOutcome::kEmpty);
}

TEST(WorkStealingDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque<int> dq(/*initial_capacity=*/4);
  constexpr int kN = 1000;  // forces several doublings
  for (int i = 0; i < kN; ++i) dq.PushBottom(i);
  EXPECT_EQ(dq.Size(), static_cast<size_t>(kN));
  // Half from the top (FIFO), half from the bottom (LIFO) — the live range
  // must have been copied intact across every Grow.
  for (int i = 0; i < kN / 2; ++i) {
    int out = -1;
    ASSERT_EQ(dq.Steal(&out), StealOutcome::kSuccess);
    EXPECT_EQ(out, i);
  }
  for (int i = kN - 1; i >= kN / 2; --i) {
    int out = -1;
    ASSERT_TRUE(dq.PopBottom(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(dq.Empty());
}

TEST(WorkStealingDequeTest, GrowthWhileNonEmptyPreservesOrder) {
  WorkStealingDeque<int> dq(/*initial_capacity=*/4);
  // Interleave pushes and pops so the live window wraps around the ring
  // before a growth happens.
  int next = 0, expect_top = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) dq.PushBottom(next++);
    int out = -1;
    ASSERT_EQ(dq.Steal(&out), StealOutcome::kSuccess);
    EXPECT_EQ(out, expect_top++);
  }
  // Drain from the top: strictly ascending continuation.
  int out = -1;
  while (dq.Steal(&out) == StealOutcome::kSuccess) {
    EXPECT_EQ(out, expect_top++);
  }
  EXPECT_EQ(expect_top, next);
}

// The race the scheduler lives on: one owner pushing/popping while several
// thieves steal. Every item must be taken exactly once — counted via a
// per-item tally — and totals must conserve. Run under TSan via the tsan
// CTest label.
TEST(WorkStealingDequeTest, StressOwnerVsConcurrentStealers) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> dq(/*initial_capacity=*/8);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> stolen_count{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&dq, &taken, &done, &stolen_count] {
      uint64_t local = 0;
      while (true) {
        int out = -1;
        const StealOutcome outcome = dq.Steal(&out);
        if (outcome == StealOutcome::kSuccess) {
          taken[out].fetch_add(1, std::memory_order_relaxed);
          ++local;
        } else if (outcome == StealOutcome::kEmpty &&
                   done.load(std::memory_order_acquire)) {
          break;
        }
        // kAbort (lost a race): just retry.
      }
      stolen_count.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Owner: push in bursts, pop some back LIFO — the scheduler's pattern of
  // seeding a job then draining its own deque while thieves raid it.
  uint64_t popped_count = 0;
  int next = 0;
  while (next < kItems) {
    for (int burst = 0; burst < 16 && next < kItems; ++burst) {
      dq.PushBottom(next++);
    }
    for (int pops = 0; pops < 8; ++pops) {
      int out = -1;
      if (!dq.PopBottom(&out)) break;
      taken[out].fetch_add(1, std::memory_order_relaxed);
      ++popped_count;
    }
  }
  // Drain the remainder as the owner, racing the thieves for the tail.
  int out = -1;
  while (dq.PopBottom(&out)) {
    taken[out].fetch_add(1, std::memory_order_relaxed);
    ++popped_count;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[i].load(std::memory_order_relaxed), 1)
        << "item " << i << " taken " << taken[i].load() << " times";
  }
  EXPECT_EQ(popped_count + stolen_count.load(),
            static_cast<uint64_t>(kItems));
  EXPECT_TRUE(dq.Empty());
}

// Thieves-only contention: all items consumed through Steal, with kAbort
// retries. Exercises the thief-vs-thief CAS path without the owner in play.
TEST(WorkStealingDequeTest, StressThievesOnly) {
  constexpr int kItems = 10000;
  constexpr int kThieves = 4;
  WorkStealingDeque<int> dq;
  for (int i = 0; i < kItems; ++i) dq.PushBottom(i);

  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0, std::memory_order_relaxed);
  std::vector<std::thread> thieves;
  std::vector<std::vector<int>> orders(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&dq, &taken, &orders, t] {
      int out = -1;
      while (true) {
        const StealOutcome outcome = dq.Steal(&out);
        if (outcome == StealOutcome::kEmpty) break;
        if (outcome != StealOutcome::kSuccess) continue;
        taken[out].fetch_add(1, std::memory_order_relaxed);
        orders[t].push_back(out);
      }
    });
  }
  for (std::thread& t : thieves) t.join();

  uint64_t total = 0;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[i].load(std::memory_order_relaxed), 1) << "item " << i;
  }
  for (const auto& order : orders) {
    total += order.size();
    // Each thief's view of the deque is FIFO: the items it won must be in
    // ascending push order.
    for (size_t j = 1; j < order.size(); ++j) {
      ASSERT_LT(order[j - 1], order[j]);
    }
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kItems));
}

}  // namespace
}  // namespace sgq
