// Service-level cache tests: resubmission and isomorphic-relabeling hits,
// bit-identical results with the cache on, off, and after CACHE CLEAR,
// timeouts staying uncached, deterministic singleflight collapse of a
// flood of identical queries, and RELOAD invalidation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "gen/graph_gen.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace sgq {
namespace {

using Outcome = QueryService::Outcome;
using sgq::testing::MakeCycle;

GraphDatabase SmallDb(uint32_t num_graphs = 30) {
  SyntheticParams params;
  params.num_graphs = num_graphs;
  params.vertices_per_graph = 16;
  params.degree = 3.0;
  params.num_labels = 4;
  params.seed = 9;
  return GenerateSyntheticDatabase(params);
}

// See query_service_test.cc: a single-label odd cycle against a database
// whose graph 0 is K_{12,12} runs until its deadline.
Graph OddCycleQuery() {
  return MakeCycle({0, 0, 0, 0, 0, 0, 0, 0, 0});
}

GraphDatabase DbWithHardInstance() {
  GraphDatabase db;
  GraphBuilder bipartite;
  for (uint32_t i = 0; i < 24; ++i) bipartite.AddVertex(0);
  for (uint32_t i = 0; i < 12; ++i) {
    for (uint32_t j = 0; j < 12; ++j) bipartite.AddEdge(i, 12 + j);
  }
  db.Add(bipartite.Build());
  const GraphDatabase rest = SmallDb();
  for (const Graph& g : rest.graphs()) db.Add(g);
  return db;
}

ServiceConfig Config(uint32_t workers, size_t queue_capacity) {
  ServiceConfig config;
  config.engine_name = "CFQL";
  config.workers = workers;
  config.queue_capacity = queue_capacity;
  return config;
}

// Rebuilds `graph` with old vertex i placed at position pos[i].
Graph Relabel(const Graph& graph, const std::vector<VertexId>& pos) {
  const uint32_t n = graph.NumVertices();
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[pos[v]] = graph.label(v);
  GraphBuilder builder;
  for (VertexId v = 0; v < n; ++v) builder.AddVertex(labels[v]);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (u < v) builder.AddEdge(pos[u], pos[v]);
    }
  }
  return builder.Build();
}

TEST(CacheServiceTest, ResubmissionServesFromCache) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  QueryService service(Config(2, 16));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  const Graph query = SmallDb().graph(3);
  const QueryService::Response first = service.Execute(query);
  const QueryService::Response second = service.Execute(query);
  EXPECT_EQ(first.outcome, Outcome::kOk);
  EXPECT_EQ(second.outcome, Outcome::kOk);
  EXPECT_EQ(first.result.answers, second.result.answers);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.engine_executions, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.completed_ok, 2u);
  // Phase totals describe the single real execution, not the replay.
  EXPECT_EQ(stats.answers_total, 2 * first.result.answers.size());
}

TEST(CacheServiceTest, IsomorphicRelabelingHitsCache) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  QueryService service(Config(2, 16));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  const Graph query = SmallDb().graph(5);
  std::vector<VertexId> pos(query.NumVertices());
  for (VertexId v = 0; v < query.NumVertices(); ++v) {
    pos[v] = (v + 7) % query.NumVertices();  // a nontrivial permutation
  }
  const QueryService::Response original = service.Execute(query);
  const QueryService::Response relabeled =
      service.Execute(Relabel(query, pos));
  EXPECT_EQ(original.result.answers, relabeled.result.answers);
  EXPECT_EQ(service.Stats().engine_executions, 1u);
  EXPECT_EQ(service.Stats().cache.hits, 1u);
}

TEST(CacheServiceTest, ResultsBitIdenticalCacheOnOffAndAfterClear) {
  ServiceConfig cached_config = Config(2, 16);
  ServiceConfig uncached_config = Config(2, 16);
  uncached_config.engine.cache_mb = 0;
  QueryService cached(cached_config);
  QueryService uncached(uncached_config);
  std::string error;
  ASSERT_TRUE(cached.Start(SmallDb(), &error)) << error;
  ASSERT_TRUE(uncached.Start(SmallDb(), &error)) << error;

  const GraphDatabase queries = SmallDb();
  std::vector<std::vector<GraphId>> cold, warm, off, after_clear;
  for (GraphId i = 0; i < 8; ++i) {
    cold.push_back(cached.Execute(queries.graph(i)).result.answers);
  }
  for (GraphId i = 0; i < 8; ++i) {
    warm.push_back(cached.Execute(queries.graph(i)).result.answers);
    off.push_back(uncached.Execute(queries.graph(i)).result.answers);
  }
  cached.CacheClear();
  for (GraphId i = 0; i < 8; ++i) {
    after_clear.push_back(cached.Execute(queries.graph(i)).result.answers);
  }
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, off);
  EXPECT_EQ(cold, after_clear);
  EXPECT_EQ(uncached.Stats().cache.hits, 0u);
  EXPECT_EQ(uncached.Stats().engine_executions, 8u);
}

TEST(CacheServiceTest, CacheClearForcesReExecution) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  QueryService service(Config(1, 8));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;
  const Graph query = SmallDb().graph(0);
  service.Execute(query);
  service.CacheClear();
  service.Execute(query);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.engine_executions, 2u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.invalidated, 1u);
  EXPECT_EQ(stats.cache.epoch, 0u);  // CLEAR purges without an epoch bump
}

TEST(CacheServiceTest, TimeoutsAreNeverCached) {
  QueryService service(Config(1, 8));
  std::string error;
  ASSERT_TRUE(service.Start(DbWithHardInstance(), &error)) << error;
  const Graph slow = OddCycleQuery();
  EXPECT_EQ(service.Execute(slow, /*timeout_seconds=*/0.2).outcome,
            Outcome::kTimeout);
  EXPECT_EQ(service.Execute(slow, /*timeout_seconds=*/0.2).outcome,
            Outcome::kTimeout);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.engine_executions, 2u);  // the second really re-ran
  EXPECT_EQ(stats.cache.inserts, 0u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
}

TEST(CacheServiceTest, FloodOfIdenticalQueriesCollapsesToOneExecution) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  // Deterministic singleflight collapse: the pre-execute hook holds the
  // leader until every other request is blocked in the flight (observable
  // via the singleflight_waiting gauge), so no follower can race ahead to
  // a cache hit and no request can miss the flight.
  constexpr uint32_t kClients = 4;
  std::atomic<bool> release{false};
  ServiceConfig config = Config(/*workers=*/kClients, /*queue_capacity=*/16);
  config.pre_execute_hook = [&](const Graph&) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  QueryService service(config);
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  const Graph query = SmallDb().graph(2);
  std::vector<std::thread> clients;
  std::vector<std::vector<GraphId>> answers(kClients);
  for (uint32_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      answers[i] = service.Execute(query).result.answers;
    });
  }
  while (service.Stats().cache.singleflight_waiting < kClients - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();

  for (uint32_t i = 1; i < kClients; ++i) EXPECT_EQ(answers[i], answers[0]);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.engine_executions, 1u);
  EXPECT_EQ(stats.cache.singleflight_shared, kClients - 1);
  EXPECT_EQ(stats.completed_ok, kClients);
  EXPECT_EQ(stats.cache.singleflight_waiting, 0u);
  // The one real execution populated the cache for later requests.
  EXPECT_EQ(stats.cache.inserts, 1u);
  service.Execute(query);
  EXPECT_EQ(service.Stats().cache.hits, 1u);
}

TEST(CacheServiceTest, ReloadInvalidatesCachedResults) {
  if (!CacheEnabledByEnv()) GTEST_SKIP() << "SGQ_CACHE=off";
  // db2 = db1 plus a pentagon with a label absent from db1: a cached
  // "no answers" for the pentagon query must not survive the reload.
  const Graph pentagon = MakeCycle({7, 7, 7, 7, 7});
  GraphDatabase db1 = SmallDb(10);
  GraphDatabase db2 = SmallDb(10);
  const GraphId pentagon_id = db2.Add(pentagon);

  QueryService service(Config(2, 8));
  std::string error;
  ASSERT_TRUE(service.Start(std::move(db1), &error)) << error;
  EXPECT_TRUE(service.Execute(pentagon).result.answers.empty());
  EXPECT_TRUE(service.Execute(pentagon).result.answers.empty());  // hit
  EXPECT_EQ(service.Stats().cache.hits, 1u);

  ASSERT_TRUE(service.Reload(std::move(db2), &error)) << error;
  const QueryService::Response after = service.Execute(pentagon);
  ASSERT_EQ(after.result.answers.size(), 1u);
  EXPECT_EQ(after.result.answers[0], pentagon_id);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.cache.epoch, 1u);
  EXPECT_GE(stats.cache.invalidated, 1u);
  EXPECT_EQ(stats.engine_executions, 2u);  // pre-reload + post-reload
}

TEST(CacheServiceTest, ConcurrentMixedTrafficKeepsAdmissionInvariant) {
  // Under concurrent identical + distinct traffic the bookkeeping must
  // balance: every admitted request is either a real execution, a cache
  // hit, a singleflight share, or a queue-expired timeout. With generous
  // deadlines and capacity there are no expiries, so the first three
  // partition `admitted` exactly.
  QueryService service(Config(/*workers=*/3, /*queue_capacity=*/64));
  std::string error;
  ASSERT_TRUE(service.Start(SmallDb(), &error)) << error;

  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 20; ++i) {
        const QueryService::Response response =
            service.Execute(SmallDb().graph((c + i) % 8));
        EXPECT_EQ(response.outcome, Outcome::kOk);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.admitted, 120u);
  EXPECT_EQ(stats.admitted, stats.engine_executions + stats.cache.hits +
                                stats.cache.singleflight_shared);
  if (CacheEnabledByEnv()) {
    EXPECT_LE(stats.engine_executions, 8u * 3u);  // bounded by keys×workers
  }
}

}  // namespace
}  // namespace sgq
