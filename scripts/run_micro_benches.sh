#!/usr/bin/env bash
# Runs the three google-benchmark micro suites and tees each one's results
# into a machine-readable BENCH_<suite>.json snapshot (see bench/bench_json.h
# and WriteBenchJson in bench/bench_common.{h,cc}).
#
# Usage:
#   scripts/run_micro_benches.sh [build_dir] [out_dir] [extra benchmark args...]
#
#   build_dir  defaults to ./build   (must contain bench/micro_*)
#   out_dir    defaults to ./bench/results
#
# Examples:
#   scripts/run_micro_benches.sh
#   scripts/run_micro_benches.sh build /tmp/perf --benchmark_min_time=0.5
#
# Snapshots are plain JSON: {suite, threads_available, benchmarks:[{name,
# iterations, ns_per_op, counters}...]}. threads_available matters when
# reading the steal benchmarks' speedup_vs_serial counter — thread-scaling
# numbers are meaningless without knowing how many hardware threads the
# machine actually had.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
shift $(( $# > 2 ? 2 : $# )) || true

for suite in micro_matching micro_intersect micro_cache; do
  bin="${build_dir}/bench/${suite}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target ${suite})" >&2
    exit 1
  fi
done

mkdir -p "${out_dir}"
for suite in micro_matching micro_intersect micro_cache; do
  echo "==> ${suite}"
  SGQ_BENCH_JSON_DIR="${out_dir}" "${build_dir}/bench/${suite}" "$@"
done

echo "snapshots in ${out_dir}:"
ls -l "${out_dir}"/BENCH_*.json
