#!/usr/bin/env bash
# Service-level flood bench: floods a freshly started fleet with queries
# through sgq_client and records latency percentiles + throughput into one
# BENCH_service_flood.json snapshot with two records side by side:
#
#   direct_1server          sgq_client -> sgq_server            (no router)
#   routed_2shards          sgq_client -> sgq_router -> 2x sgq_server --shard-of
#   mixed_fifo_cheap        cheap flood under heavy load, FIFO admission
#   mixed_fifo_cheap_stream same, streamed (records time-to-first-embedding)
#   mixed_sjf_cheap         cheap flood under heavy load, SJF admission
#   mixed_sjf_cheap_stream  same, streamed
#
# Latency is first-byte-after-request (connection setup excluded, see
# tools/sgq_client.cc), so the first two records isolate exactly the
# router's scatter-gather overhead. The mixed_* records measure what the
# cost-aware scheduler buys: a background client floods deadline-bound
# heavy queries while the recorded client floods cheap ones — compare
# p95_ms of mixed_fifo_cheap vs mixed_sjf_cheap. sgq_client merges records
# by name into the existing file, so re-running one configuration
# refreshes only its record.
#
# Usage:
#   scripts/run_service_bench.sh [build_dir] [out_dir]
#
#   build_dir  defaults to ./build   (must contain tools/sgq_{cli,server,client,router})
#   out_dir    defaults to ./bench/results
#
# Scale knobs (environment):
#   SGQ_FLOOD_GRAPHS          database size           (default 200)
#   SGQ_FLOOD_QUERIES         distinct queries        (default 20)
#   SGQ_FLOOD_REPEAT          repeats per query       (default 25)
#   SGQ_FLOOD_CONNECTIONS     concurrent clients      (default 8)
#   SGQ_FLOOD_HEAVY_EDGES     edges per heavy query   (default 24)
#   SGQ_FLOOD_HEAVY_TIMEOUT   heavy query deadline, s (default 0.05)
#   SGQ_FLOOD_SCHED_THRESHOLD cheap/heavy cost split  (default 1000000)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
graphs="${SGQ_FLOOD_GRAPHS:-200}"
queries="${SGQ_FLOOD_QUERIES:-20}"
repeat="${SGQ_FLOOD_REPEAT:-25}"
connections="${SGQ_FLOOD_CONNECTIONS:-8}"
heavy_edges="${SGQ_FLOOD_HEAVY_EDGES:-24}"
heavy_timeout="${SGQ_FLOOD_HEAVY_TIMEOUT:-0.05}"
sched_threshold="${SGQ_FLOOD_SCHED_THRESHOLD:-1000000}"

cli="${build_dir}/tools/sgq_cli"
server="${build_dir}/tools/sgq_server"
client="${build_dir}/tools/sgq_client"
router="${build_dir}/tools/sgq_router"
for bin in "${cli}" "${server}" "${client}" "${router}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir})" >&2
    exit 1
  fi
done

mkdir -p "${out_dir}"
out_json="${out_dir}/BENCH_service_flood.json"
dir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "${dir}"
}
trap cleanup EXIT

"${cli}" generate --out "${dir}/db.txt" --graphs "${graphs}" --vertices 16 \
  --degree 3 --labels 6 --seed 11
"${cli}" genq --db "${dir}/db.txt" --out "${dir}/q.txt" --edges 4 \
  --count "${queries}" --seed 4

wait_sock() {
  for _ in $(seq 1 100); do
    [[ -S "$1" ]] && return 0
    sleep 0.1
  done
  echo "error: $1 did not come up" >&2
  exit 1
}

start_server() {  # socket [extra args...]
  local sock="$1"; shift
  "${server}" --db "${dir}/db.txt" --socket "${sock}" --engine CFQL \
    --workers 2 --queue 64 "$@" > /dev/null 2>&1 &
  pids+=($!)
  wait_sock "${sock}"
}

flood() {  # socket record_name
  "${client}" --socket "$1" --op query --queries "${dir}/q.txt" \
    --repeat "${repeat}" --connections "${connections}" --quiet 1 \
    --bench-json "${out_json}" --bench-name "$2"
}

echo "==> direct_1server"
start_server "${dir}/direct.sock"
flood "${dir}/direct.sock" direct_1server
"${client}" --socket "${dir}/direct.sock" --op shutdown > /dev/null

echo "==> routed_2shards"
start_server "${dir}/s0.sock" --shard-of 0/2
start_server "${dir}/s1.sock" --shard-of 1/2
"${router}" --shards "unix:${dir}/s0.sock,unix:${dir}/s1.sock" \
  --socket "${dir}/router.sock" > /dev/null 2>&1 &
pids+=($!)
wait_sock "${dir}/router.sock"
flood "${dir}/router.sock" routed_2shards
"${client}" --socket "${dir}/router.sock" --op shutdown > /dev/null

# --- mixed cheap+heavy flood: FIFO vs SJF, batch vs stream ------------------
# A background client floods deadline-bound heavy queries while the recorded
# client floods cheap ones. Under FIFO the cheap queries queue behind the
# heavy ones; under SJF the admission cost model lets them jump the queue.
#
# The mixed workload runs on its own single-label dense database: with one
# label the candidate filters lose their pruning power, so a large mined
# query turns into a non-containment proof on most graphs and reliably burns
# its whole deadline, while a 2-edge query stays ~1 ms. The result cache is
# off so every repeat really executes. The background flood is sized to
# outlive the measurement and killed afterwards.
"${cli}" generate --out "${dir}/db_mixed.txt" --graphs "${graphs}" \
  --vertices 32 --degree 8 --labels 1 --seed 11
"${cli}" genq --db "${dir}/db_mixed.txt" --out "${dir}/q_cheap.txt" \
  --edges 2 --count "${queries}" --seed 7
"${cli}" genq --db "${dir}/db_mixed.txt" --out "${dir}/q_heavy.txt" \
  --edges "${heavy_edges}" --count 4 --seed 9

start_mixed_server() {  # socket sched
  local sock="$1" sched="$2"
  "${server}" --db "${dir}/db_mixed.txt" --socket "${sock}" --engine CFQL \
    --workers 2 --queue 64 --cache off --sched "${sched}" \
    --sched-threshold "${sched_threshold}" > /dev/null 2>&1 &
  pids+=($!)
  wait_sock "${sock}"
}

mixed_flood() {  # socket record_name [extra cheap-client args...]
  local sock="$1" name="$2"; shift 2
  "${client}" --socket "${sock}" --op query --queries "${dir}/q_heavy.txt" \
    --repeat 100000 --connections 2 --timeout "${heavy_timeout}" \
    --quiet 1 > /dev/null 2>&1 &
  local heavy_pid=$!
  sleep 0.3  # let the heavy flood occupy the workers first
  "${client}" --socket "${sock}" --op query --queries "${dir}/q_cheap.txt" \
    --repeat "${repeat}" --connections "${connections}" --quiet 1 \
    --bench-json "${out_json}" --bench-name "${name}" "$@"
  kill "${heavy_pid}" 2>/dev/null || true
  wait "${heavy_pid}" 2>/dev/null || true
}

for sched in fifo sjf; do
  echo "==> mixed_${sched}"
  start_mixed_server "${dir}/${sched}.sock" "${sched}"
  mixed_flood "${dir}/${sched}.sock" "mixed_${sched}_cheap"
  mixed_flood "${dir}/${sched}.sock" "mixed_${sched}_cheap_stream" --stream 1
  "${client}" --socket "${dir}/${sched}.sock" --op stats \
    | grep -o '"sched":{"policy":"[a-z]*","aged":[0-9]*' || true
  "${client}" --socket "${dir}/${sched}.sock" --op shutdown > /dev/null
done

echo "snapshot:"
cat "${out_json}"
