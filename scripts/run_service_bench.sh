#!/usr/bin/env bash
# Service-level flood bench: floods a freshly started fleet with queries
# through sgq_client and records latency percentiles + throughput into one
# BENCH_service_flood.json snapshot with two records side by side:
#
#   direct_1server   sgq_client -> sgq_server            (no router)
#   routed_2shards   sgq_client -> sgq_router -> 2x sgq_server --shard-of
#
# Latency is first-byte-after-request (connection setup excluded, see
# tools/sgq_client.cc), so the two records isolate exactly the router's
# scatter-gather overhead. sgq_client merges records by name into the
# existing file, so re-running one configuration refreshes only its record.
#
# Usage:
#   scripts/run_service_bench.sh [build_dir] [out_dir]
#
#   build_dir  defaults to ./build   (must contain tools/sgq_{cli,server,client,router})
#   out_dir    defaults to ./bench/results
#
# Scale knobs (environment):
#   SGQ_FLOOD_GRAPHS       database size        (default 200)
#   SGQ_FLOOD_QUERIES      distinct queries     (default 20)
#   SGQ_FLOOD_REPEAT       repeats per query    (default 25)
#   SGQ_FLOOD_CONNECTIONS  concurrent clients   (default 8)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
graphs="${SGQ_FLOOD_GRAPHS:-200}"
queries="${SGQ_FLOOD_QUERIES:-20}"
repeat="${SGQ_FLOOD_REPEAT:-25}"
connections="${SGQ_FLOOD_CONNECTIONS:-8}"

cli="${build_dir}/tools/sgq_cli"
server="${build_dir}/tools/sgq_server"
client="${build_dir}/tools/sgq_client"
router="${build_dir}/tools/sgq_router"
for bin in "${cli}" "${server}" "${client}" "${router}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir})" >&2
    exit 1
  fi
done

mkdir -p "${out_dir}"
out_json="${out_dir}/BENCH_service_flood.json"
dir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "${dir}"
}
trap cleanup EXIT

"${cli}" generate --out "${dir}/db.txt" --graphs "${graphs}" --vertices 16 \
  --degree 3 --labels 6 --seed 11
"${cli}" genq --db "${dir}/db.txt" --out "${dir}/q.txt" --edges 4 \
  --count "${queries}" --seed 4

wait_sock() {
  for _ in $(seq 1 100); do
    [[ -S "$1" ]] && return 0
    sleep 0.1
  done
  echo "error: $1 did not come up" >&2
  exit 1
}

start_server() {  # socket [extra args...]
  local sock="$1"; shift
  "${server}" --db "${dir}/db.txt" --socket "${sock}" --engine CFQL \
    --workers 2 --queue 64 "$@" > /dev/null 2>&1 &
  pids+=($!)
  wait_sock "${sock}"
}

flood() {  # socket record_name
  "${client}" --socket "$1" --op query --queries "${dir}/q.txt" \
    --repeat "${repeat}" --connections "${connections}" --quiet 1 \
    --bench-json "${out_json}" --bench-name "$2"
}

echo "==> direct_1server"
start_server "${dir}/direct.sock"
flood "${dir}/direct.sock" direct_1server
"${client}" --socket "${dir}/direct.sock" --op shutdown > /dev/null

echo "==> routed_2shards"
start_server "${dir}/s0.sock" --shard-of 0/2
start_server "${dir}/s1.sock" --shard-of 1/2
"${router}" --shards "unix:${dir}/s0.sock,unix:${dir}/s1.sock" \
  --socket "${dir}/router.sock" > /dev/null 2>&1 &
pids+=($!)
wait_sock "${dir}/router.sock"
flood "${dir}/router.sock" routed_2shards
"${client}" --socket "${dir}/router.sock" --op shutdown > /dev/null

echo "snapshot:"
cat "${out_json}"
