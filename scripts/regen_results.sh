#!/bin/sh
# Regenerates the committed result files from scratch:
#   test_output.txt   — full ctest run
#   bench_output.txt  — every bench binary (recomputes the sweep caches on
#                       first run; see README for the SGQ_* knobs)
# Usage: scripts/regen_results.sh [build-dir]
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
