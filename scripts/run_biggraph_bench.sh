#!/usr/bin/env bash
# Runs the massive-single-graph micro suite (bench/micro_biggraph) and tees
# its results into bench/results/BENCH_micro_biggraph.json (see
# bench/bench_json.h). The acceptance counters live on two rows:
#   BM_LoadSnapshot        load_speedup_vs_text  (target >= 10x)
#   BM_FirstLevelIndexed   candidate_reduction   (target >= 5x)
#
# Usage:
#   scripts/run_biggraph_bench.sh [--smoke] [build_dir] [out_dir] [extra args]
#
#   --smoke    shrink the generated graph (16k vertices) so CI finishes in
#              seconds; full runs default to 131072 vertices.
#   build_dir  defaults to ./build   (must contain bench/micro_biggraph)
#   out_dir    defaults to ./bench/results
#
# Examples:
#   scripts/run_biggraph_bench.sh
#   scripts/run_biggraph_bench.sh --smoke
#   scripts/run_biggraph_bench.sh build /tmp/perf --benchmark_min_time=0.5
set -euo pipefail

cd "$(dirname "$0")/.."

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
shift $(( $# > 2 ? 2 : $# )) || true

bin="${build_dir}/bench/micro_biggraph"
if [[ ! -x "${bin}" ]]; then
  echo "error: ${bin} not built (cmake --build ${build_dir} --target micro_biggraph)" >&2
  exit 1
fi

if [[ "${smoke}" == 1 ]]; then
  export SGQ_BIGGRAPH_VERTICES="${SGQ_BIGGRAPH_VERTICES:-16384}"
  export SGQ_BIGGRAPH_AVG_DEGREE="${SGQ_BIGGRAPH_AVG_DEGREE:-8}"
fi

mkdir -p "${out_dir}"
SGQ_BENCH_JSON_DIR="${out_dir}" "${bin}" "$@"

echo "snapshot:"
ls -l "${out_dir}/BENCH_micro_biggraph.json"
