#!/usr/bin/env bash
# Dynamic-database bench: measures the three index-maintenance strategies
# under a live update stream (bench/bench_dynamic_maintenance.cc), then
# floods a real server with a mixed query+mutation workload through
# sgq_client --write-ratio, and tees everything into one
# BENCH_dynamic.json snapshot (suite "dynamic") with these records:
#
#   grapes_rebuild        rebuild the Grapes index after every update batch
#   grapes_incremental    NotifyAdded/NotifyRemoved per update
#   cfql_no_maintenance   index-free engine, zero maintenance
#   served_mutations      live sgq_server under a mixed flood: query AND
#                         mutation latency percentiles, mutations/sec
#
# The first three records isolate the offline maintenance cost the paper
# argues about; served_mutations shows the end-to-end price of the live
# mutation subsystem (ADD/REMOVE GRAPH without quiesce): queries keep
# flowing while ~write_ratio of the work items mutate the database.
#
# Usage:
#   scripts/run_dynamic_bench.sh [build_dir] [out_dir]
#
#   build_dir  defaults to ./build
#   out_dir    defaults to ./bench/results
#
# Scale knobs (environment):
#   SGQ_DYN_GRAPHS       initial database size, both parts  (default 150)
#   SGQ_DYN_BATCHES      update batches (offline part)      (default 4)
#   SGQ_DYN_UPDATES      updates per batch                  (default 20)
#   SGQ_DYN_QUERIES      queries per batch                  (default 10)
#   SGQ_DYN_FLOOD_QUERIES distinct flood queries            (default 20)
#   SGQ_DYN_FLOOD_REPEAT  repeats per query                 (default 25)
#   SGQ_DYN_CONNECTIONS   concurrent clients                (default 8)
#   SGQ_DYN_WRITE_RATIO   mutation share of the flood       (default 0.2)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
graphs="${SGQ_DYN_GRAPHS:-150}"
flood_queries="${SGQ_DYN_FLOOD_QUERIES:-20}"
flood_repeat="${SGQ_DYN_FLOOD_REPEAT:-25}"
connections="${SGQ_DYN_CONNECTIONS:-8}"
write_ratio="${SGQ_DYN_WRITE_RATIO:-0.2}"

bench="${build_dir}/bench/bench_dynamic_maintenance"
cli="${build_dir}/tools/sgq_cli"
server="${build_dir}/tools/sgq_server"
client="${build_dir}/tools/sgq_client"
for bin in "${bench}" "${cli}" "${server}" "${client}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir})" >&2
    exit 1
  fi
done

mkdir -p "${out_dir}"
out_json="${out_dir}/BENCH_dynamic.json"
dir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "${dir}"
}
trap cleanup EXIT

# --- offline: the three maintenance strategies ------------------------------
# Overwrites the snapshot; the live record below is merged on top.
echo "==> maintenance strategies (rebuild vs incremental vs index-free)"
SGQ_BENCH_JSON="${out_json}" "${bench}"

# --- live: mixed query+mutation flood against a real server -----------------
echo "==> served mutations (write_ratio ${write_ratio})"
"${cli}" generate --out "${dir}/db.txt" --graphs "${graphs}" --vertices 16 \
  --degree 3 --labels 6 --seed 11
"${cli}" genq --db "${dir}/db.txt" --out "${dir}/q.txt" --edges 4 \
  --count "${flood_queries}" --seed 4

"${server}" --db "${dir}/db.txt" --socket "${dir}/dyn.sock" --engine CFQL \
  --workers 2 --queue 64 > /dev/null 2>&1 &
pids+=($!)
for _ in $(seq 1 100); do
  [[ -S "${dir}/dyn.sock" ]] && break
  sleep 0.1
done
[[ -S "${dir}/dyn.sock" ]] || { echo "error: server did not come up" >&2; exit 1; }

"${client}" --socket "${dir}/dyn.sock" --op query --queries "${dir}/q.txt" \
  --repeat "${flood_repeat}" --connections "${connections}" \
  --write-ratio "${write_ratio}" --quiet 1 \
  --bench-json "${out_json}" --bench-name served_mutations

# Zero-quiesce witness: the update section must show mutations applied
# while queries were in flight.
"${client}" --socket "${dir}/dyn.sock" --op stats \
  | grep -o '"update":{[^}]*}' || true
"${client}" --socket "${dir}/dyn.sock" --op shutdown > /dev/null

echo "snapshot:"
cat "${out_json}"
